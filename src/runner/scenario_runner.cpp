#include "runner/scenario_runner.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "carbon/forecast.hpp"
#include "carbon/service.hpp"
#include "core/simulation.hpp"
#include "geo/catalog.hpp"
#include "geo/latency.hpp"
#include "geo/site.hpp"
#include "sim/datacenter.hpp"
#include "sim/server.hpp"
#include "util/parallelism.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace carbonedge::runner {

namespace {

sim::EdgeCluster build_cluster(const Scenario& scenario) {
  const DeviceMix& mix = scenario.mix;
  // A single-device mix cycles trivially, so make_hetero_cluster covers the
  // homogeneous case too; total_servers switches to population-proportional
  // apportionment (the "Capacity" skew scenario).
  sim::EdgeCluster cluster =
      mix.total_servers > 0
          ? sim::make_population_cluster(scenario.region, mix.total_servers, mix.devices.front())
          : sim::make_hetero_cluster(scenario.region, mix.servers_per_site, mix.devices);
  if (mix.initially_off_per_site > 0) {
    for (sim::EdgeDataCenter& site : cluster.sites()) {
      std::vector<sim::EdgeServer>& servers = site.servers();
      const std::size_t off = std::min(mix.initially_off_per_site, servers.size());
      for (std::size_t s = servers.size() - off; s < servers.size(); ++s) {
        servers[s].set_powered_on(false);
      }
    }
  }
  return cluster;
}

// Distinct Region values can share a display name (e.g. cdn_region with
// different site counts both yield "CDN Europe"), so service dedup must key
// on the full identity: name plus the exact city list. SiteIds are only
// stable within one catalog, so the key spells out each city's name — two
// regions over different catalogs never alias even when their id lists
// match. The forecaster is part of the service state, so it joins the key
// too.
std::string service_key(const Scenario& scenario) {
  const geo::SiteCatalog& catalog = scenario.region.site_catalog();
  std::string key = scenario.forecaster;
  key += '\n';
  key += scenario.region.name;
  for (const geo::SiteId city : scenario.region.cities) {
    key += '|';
    key += std::to_string(city);
    key += '=';
    key += catalog.by_id(city).name;
  }
  return key;
}

}  // namespace

std::vector<ScenarioOutcome> ScenarioRunner::run(const ScenarioGrid& grid) const {
  return run(grid.expand());
}

std::vector<ScenarioOutcome> ScenarioRunner::run(std::vector<Scenario> scenarios) const {
  if (scenarios.empty()) return {};

  // Resolve the persistent sweep store first: cells already computed by an
  // earlier (possibly interrupted) run — or by another process sharing the
  // store — are loaded into their slots and never dispatched. Cached
  // results round-trip bit-exactly, so the aggregate is byte-identical to
  // a cold one-shot run of the same list.
  std::vector<core::SimulationResult> slots(scenarios.size());
  std::vector<std::size_t> pending;
  pending.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    if (options_.sweep_store != nullptr) {
      if (auto cached = options_.sweep_store->load(scenarios[i])) {
        slots[i] = std::move(*cached);
        continue;
      }
    }
    pending.push_back(i);
  }

  // Build each distinct (region, forecaster) service once, serially, before
  // any worker starts: services are then only read (const) concurrently.
  // Only pending cells need a service — a fully-warm resume builds none and
  // synthesizes nothing. Trace synthesis itself is additionally memoized
  // process-wide (and, with a store attached, across processes) by
  // carbon::TraceCache, so repeat sweeps over the same zones share one
  // immutable year-long series instead of re-synthesizing. Each pending
  // scenario's service pointer is resolved here too, keeping key building
  // and map lookups off the dispatch path.
  std::map<std::string, std::unique_ptr<carbon::CarbonIntensityService>> services;
  std::vector<const carbon::CarbonIntensityService*> cell_services(scenarios.size(), nullptr);
  for (const std::size_t i : pending) {
    const Scenario& scenario = scenarios[i];
    auto& slot = services[service_key(scenario)];
    if (!slot) {
      slot = std::make_unique<carbon::CarbonIntensityService>();
      slot->add_region(scenario.region);
      if (!scenario.forecaster.empty()) {
        slot->set_forecaster(carbon::make_forecaster(scenario.forecaster));
      }
    }
    cell_services[i] = slot.get();
  }

  // Cells lease their workers from the process budget: the sweep takes one
  // lane per concurrently running cell, and whatever is left flows to the
  // cells themselves as intra-simulation shard lanes (set_lane_cap gives
  // each cell an even share, so a grid narrower than the machine still
  // uses every configured worker instead of idling the leftover).
  util::ParallelismBudget& budget =
      options_.budget != nullptr ? *options_.budget : util::global_budget();
  std::size_t cell_lane_cap = 1;
  const auto body = [&](std::size_t p) {
    const std::size_t i = pending[p];
    core::EdgeSimulation simulation(build_cluster(scenarios[i]), *cell_services[i],
                                    geo::LatencyModel{}, scenarios[i].latency_band_ms);
    simulation.set_parallelism_budget(options_.budget);
    simulation.set_lane_cap(cell_lane_cap);
    slots[i] = simulation.run(scenarios[i].config);
    // Publish as soon as the cell completes (atomic rename), so a killed
    // sweep loses at most the cells still in flight.
    if (options_.sweep_store != nullptr) {
      options_.sweep_store->save(scenarios[i], slots[i]);
    }
  };
  if (options_.threads != 0) {
    // Explicit worker count: the caller's choice wins, but the lanes are
    // still leased so the nested layers below see them as spent.
    const util::ParallelismBudget::Lease lease = budget.acquire(options_.threads);
    cell_lane_cap = std::max<std::size_t>(1, budget.total() / options_.threads);
    util::ThreadPool pool(options_.threads);
    util::parallel_for(pool, 0, pending.size(), body, /*chunk=*/1);
  } else {
    const util::ParallelismBudget::Lease lease = budget.acquire(pending.size());
    const std::size_t cell_lanes = lease.lanes();
    cell_lane_cap = std::max<std::size_t>(1, budget.total() / cell_lanes);
    if (cell_lanes <= 1) {
      for (std::size_t p = 0; p < pending.size(); ++p) body(p);
    } else {
      util::ThreadPool pool(cell_lanes);
      util::parallel_for(pool, 0, pending.size(), body, /*chunk=*/1);
    }
  }

  std::vector<ScenarioOutcome> outcomes;
  outcomes.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    outcomes.push_back(ScenarioOutcome{std::move(scenarios[i]), std::move(slots[i])});
  }
  return outcomes;
}

util::Table ScenarioRunner::summarize(const std::vector<ScenarioOutcome>& outcomes) {
  util::Table table({"Scenario", "Carbon (kg)", "Energy (kWh)", "Mean RTT (ms)", "Placed",
                     "Rejected", "ExpiredDef", "Migrations", "Skipped", "Failures", "Downtime"});
  for (const ScenarioOutcome& outcome : outcomes) {
    const core::SimulationResult& r = outcome.result;
    table.add_row({outcome.scenario.label, util::format_fixed(r.telemetry.total_carbon_kg(), 3),
                   util::format_fixed(r.telemetry.total_energy_wh() / 1e3, 3),
                   util::format_fixed(r.telemetry.mean_rtt_ms(), 2),
                   std::to_string(r.apps_placed), std::to_string(r.apps_rejected),
                   std::to_string(r.apps_expired_deferred), std::to_string(r.migrations),
                   std::to_string(r.migrations_skipped), std::to_string(r.server_failures),
                   std::to_string(r.app_downtime_epochs)});
  }
  return table;
}

util::Table ScenarioRunner::summarize(const std::vector<ScenarioOutcome>& outcomes,
                                      const CellCache* cache) {
  util::Table table = summarize(outcomes);
  // One health string for the whole sweep (the cache is shared by every
  // cell): "ok" when all persists landed, a loud FAIL count when the store
  // degraded to memory-only, "-" when the sweep ran without a store.
  std::string status = "-";
  if (cache != nullptr) {
    const CellCacheHealth health = cache->health();
    status = health.write_failures > 0
                 ? "FAIL:" + std::to_string(health.write_failures) + "w"
                 : "ok";
  }
  table.append_column("Store", status);
  return table;
}

}  // namespace carbonedge::runner
