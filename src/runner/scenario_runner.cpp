#include "runner/scenario_runner.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "carbon/service.hpp"
#include "core/simulation.hpp"
#include "util/thread_pool.hpp"

namespace carbonedge::runner {

namespace {

sim::EdgeCluster build_cluster(const Scenario& scenario) {
  const DeviceMix& mix = scenario.mix;
  // A single-device mix cycles trivially, so make_hetero_cluster covers the
  // homogeneous case too; total_servers switches to population-proportional
  // apportionment (the "Capacity" skew scenario).
  sim::EdgeCluster cluster =
      mix.total_servers > 0
          ? sim::make_population_cluster(scenario.region, mix.total_servers, mix.devices.front())
          : sim::make_hetero_cluster(scenario.region, mix.servers_per_site, mix.devices);
  if (mix.initially_off_per_site > 0) {
    for (sim::EdgeDataCenter& site : cluster.sites()) {
      std::vector<sim::EdgeServer>& servers = site.servers();
      const std::size_t off = std::min(mix.initially_off_per_site, servers.size());
      for (std::size_t s = servers.size() - off; s < servers.size(); ++s) {
        servers[s].set_powered_on(false);
      }
    }
  }
  return cluster;
}

// Distinct Region values can share a display name (e.g. cdn_region with
// different site counts both yield "CDN Europe"), so service dedup must key
// on the full identity: name plus the exact city list. The forecaster is
// part of the service state, so it joins the key too.
std::string service_key(const Scenario& scenario) {
  std::string key = scenario.forecaster;
  key += '\n';
  key += scenario.region.name;
  for (const geo::CityId city : scenario.region.cities) {
    key += '|';
    key += std::to_string(city);
  }
  return key;
}

}  // namespace

std::vector<ScenarioOutcome> ScenarioRunner::run(const ScenarioGrid& grid) const {
  return run(grid.expand());
}

std::vector<ScenarioOutcome> ScenarioRunner::run(std::vector<Scenario> scenarios) const {
  if (scenarios.empty()) return {};

  // Build each distinct (region, forecaster) service once, serially, before
  // any worker starts: services are then only read (const) concurrently.
  // Trace synthesis itself is additionally memoized process-wide by
  // carbon::TraceCache, so repeat sweeps over the same zones share one
  // immutable year-long series instead of re-synthesizing. Each scenario's
  // service pointer is resolved here too, keeping key building and map
  // lookups off the dispatch path.
  std::map<std::string, std::unique_ptr<carbon::CarbonIntensityService>> services;
  std::vector<const carbon::CarbonIntensityService*> cell_services;
  cell_services.reserve(scenarios.size());
  for (const Scenario& scenario : scenarios) {
    auto& slot = services[service_key(scenario)];
    if (!slot) {
      slot = std::make_unique<carbon::CarbonIntensityService>();
      slot->add_region(scenario.region);
      if (!scenario.forecaster.empty()) {
        slot->set_forecaster(carbon::make_forecaster(scenario.forecaster));
      }
    }
    cell_services.push_back(slot.get());
  }

  std::vector<core::SimulationResult> slots(scenarios.size());
  const auto body = [&](std::size_t i) {
    core::EdgeSimulation simulation(build_cluster(scenarios[i]), *cell_services[i]);
    slots[i] = simulation.run(scenarios[i].config);
  };
  if (options_.threads == 0) {
    // Default thread count: reuse the process-wide pool instead of paying
    // pool construction/teardown on every sweep.
    util::parallel_for(util::global_pool(), 0, scenarios.size(), body, /*chunk=*/1);
  } else {
    util::ThreadPool pool(options_.threads);
    util::parallel_for(pool, 0, scenarios.size(), body, /*chunk=*/1);
  }

  std::vector<ScenarioOutcome> outcomes;
  outcomes.reserve(scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    outcomes.push_back(ScenarioOutcome{std::move(scenarios[i]), std::move(slots[i])});
  }
  return outcomes;
}

util::Table ScenarioRunner::summarize(const std::vector<ScenarioOutcome>& outcomes) {
  util::Table table({"Scenario", "Carbon (kg)", "Energy (kWh)", "Mean RTT (ms)", "Placed",
                     "Rejected", "ExpiredDef", "Migrations", "Skipped", "Failures", "Downtime"});
  for (const ScenarioOutcome& outcome : outcomes) {
    const core::SimulationResult& r = outcome.result;
    table.add_row({outcome.scenario.label, util::format_fixed(r.telemetry.total_carbon_kg(), 3),
                   util::format_fixed(r.telemetry.total_energy_wh() / 1e3, 3),
                   util::format_fixed(r.telemetry.mean_rtt_ms(), 2),
                   std::to_string(r.apps_placed), std::to_string(r.apps_rejected),
                   std::to_string(r.apps_expired_deferred), std::to_string(r.migrations),
                   std::to_string(r.migrations_skipped), std::to_string(r.server_failures),
                   std::to_string(r.app_downtime_epochs)});
  }
  return table;
}

}  // namespace carbonedge::runner
