// carbonedge_lint — a determinism and architecture linter for the
// CarbonEdge tree.
//
// The repo's load-bearing guarantee is that sweep, sim, solver, and serve
// output is byte-identical across CARBONEDGE_THREADS. The TSan job and the
// determinism smoke gate enforce that dynamically, for the runs they happen
// to exercise; this linter rejects the known *sources* of nondeterminism —
// and the structural decay that precedes them — at the source level, always,
// on every file:
//
//   D1  banned nondeterminism primitives: std::rand/srand, random_device,
//       *_clock::now, time(nullptr), this_thread::get_id, and ordered
//       containers keyed on pointers (iteration order = allocation order).
//   D2  iteration over unordered_map/unordered_set in any form (range-for
//       or .begin() loops) must either be the serial-snapshot idiom or
//       carry a reasoned `unordered-iteration-ok` annotation — folding or
//       emitting in bucket order is how fp sums drift.
//   D3  inside parallel sections (lambdas passed to parallel_items /
//       parallel_for / ThreadPool::submit, directly or via a named lambda):
//       no RNG draws (coordinator-only RNG is the PR 5 contract) and no
//       mutation of shared member state (`name_` identifiers) except
//       disjoint-slot writes (`name_[index] = ...`).
//   D4  `float` is banned in the accounting/telemetry layers (src/sim,
//       src/core): the store codecs and the replay oracle are a bit-exact
//       double contract.
//   D5  std::getenv only inside the util::env shim, so every environment
//       input the process reads is auditable in one place.
//   D6  the sanctioned slot pattern, verified structurally: every write
//       inside a parallel section must target a subscripted lvalue whose
//       index derives from the lambda's item/index parameter (or a by-value
//       capture); writes through captured-by-reference locals that are not
//       slot buffers, and slot writes with an unrelated index, are findings.
//   D7  order-sensitive accumulation: `x += ...` / `x = x + ...` into a
//       captured variable inside a parallel section, or into any loop-outer
//       variable inside a range-for over an unordered container. The escape
//       hatch (`ordered-fold-ok`) is for folds proven insensitive to order.
//   D8  raw `.lock()` / `.unlock()` calls: mutexes are held through RAII
//       guards only, so no early return can leak a lock.
//   H1  header hygiene: `#pragma once` required, `using namespace` banned
//       in headers.
//
// and the architecture pass, checked tree-wide against the layer DAG
// declared in tools/lint/layers.txt:
//
//   A1  upward or undeclared cross-module dependency: module(includer) must
//       be allowed to depend on module(header) per the transitive closure
//       of layers.txt.
//   A2  include cycle among the tree's own headers (DFS, each cycle
//       reported once with its full deterministic path).
//   A3  src/* including from bench/, tests/, or examples/.
//   A4  IWYU-lite, unused include: a quoted include of one of our headers
//       none of whose exported names is referenced by the includer.
//   A5  IWYU-lite, transitive-only include: a file uses a symbol whose
//       unique exporting header is reachable only transitively — the
//       include chain is reported and `--fix-includes` emits the insertion.
//       Chains entering through the file's companion header (x.cpp ->
//       x.hpp -> ...) are exempt: the companion's includes are part of the
//       file's own declared interface.
//
// Findings are suppressible only with a reasoned in-source annotation
//
//   // lint: <token>(<reason>)
//
// on the finding's line or the line directly above it, or with an entry in
// the checked-in allowlist (`<rule> <path> <reason>` per line). The token
// for each rule is listed by `carbonedge_lint --list-rules` (see rules()).
// The tool validates its own escape hatches: a malformed annotation, an
// unknown token, an empty reason, or a suppression that matches no finding
// is itself an error (rule id LINT), so the suppression set can never rot.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace carbonedge::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;      // "D1".."D8", "H1", "A1".."A5", or "LINT" (meta)
  std::string message;
};

/// "file:line: rule-id: message" — the one diagnostic shape everything emits.
[[nodiscard]] std::string format(const Finding& finding);

/// A file queued for linting. `path` is the repo-relative label used in
/// diagnostics, allowlist matching, include resolution, and the path gates.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One `// lint: <token>(<reason>)` suppression extracted from a comment.
struct Annotation {
  std::size_t line = 0;  // line the comment ends on
  std::string token;
  std::string reason;
  bool malformed = false;
  std::string error;  // set when malformed
  bool used = false;
};

/// One `<rule> <path> <reason...>` line of the checked-in allowlist.
struct AllowlistEntry {
  std::size_t line = 0;
  std::string rule;
  std::string path;
  std::string reason;
  bool used = false;
};

/// One rule the engine knows: its id, its suppression token, and a one-line
/// summary (`--list-rules`).
struct RuleInfo {
  std::string id;
  std::string token;
  std::string summary;
};

/// Every rule, in report order (D1..D8, H1, A1..A5).
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// Suppression token -> rule id, derived from rules(). An unknown token in
/// an annotation is itself a LINT error.
[[nodiscard]] const std::map<std::string, std::string>& token_rules();

/// One mechanical include fix derived from an A4/A5 finding, consumed by
/// `--fix-includes` (rendered as a unified diff by report.hpp).
struct IncludeEdit {
  std::string file;
  std::size_t line = 0;  // 1-based: line to remove, or to insert before
  bool remove = false;
  std::string rule;  // the finding that produced it ("A4" or "A5")
  std::string text;  // the inserted `#include "..."` line (insertions only)
};

struct LintConfig {
  /// Rule ids to run; empty means every rule. LINT meta findings always run.
  std::vector<std::string> rules;
  /// Contents of tools/lint/layers.txt. Empty disables A1 and the
  /// declared-module validation (A2–A5 need no layer declaration).
  std::string layers_text;
  /// Label used for LINT findings against the layers file itself.
  std::string layers_label = "layers.txt";
};

struct LintOutput {
  std::vector<Finding> findings;
  std::vector<IncludeEdit> edits;       // fixes for surviving A4/A5 findings
  std::string module_graph_dot;         // observed module graph (Graphviz)
};

/// Returns `source` with identical length and line structure, but with
/// comment bodies and string/char/raw-string literal contents blanked to
/// spaces — the view every rule scans, so nothing inside a comment or
/// literal can ever fire (or suppress) a rule.
[[nodiscard]] std::string strip_comments_and_literals(std::string_view source);

/// Extracts lint annotations from comment text only (an annotation spelled
/// inside a string literal is not an annotation). Malformed annotations are
/// returned with `malformed` set so the engine can report them.
[[nodiscard]] std::vector<Annotation> extract_annotations(std::string_view source);

/// Parses the allowlist; malformed lines become LINT findings against
/// `label`.
[[nodiscard]] std::vector<AllowlistEntry> parse_allowlist(std::string_view content,
                                                          std::string_view label,
                                                          std::vector<Finding>& errors);

/// Full engine: lexes every file, collects tree-wide state (unordered
/// container names, the include graph, header export sets), runs the
/// enabled rules, then applies and validates annotations and the allowlist.
/// Findings come back sorted by (file, line, rule, message); edits are the
/// mechanical fixes for the A4/A5 findings that survived suppression.
[[nodiscard]] LintOutput run_lint_full(const std::vector<SourceFile>& files,
                                       std::vector<AllowlistEntry>& allowlist,
                                       const LintConfig& config = {});

/// Compatibility wrapper: every rule, no layer DAG. Equivalent to
/// run_lint_full(files, allowlist, {}).findings.
[[nodiscard]] std::vector<Finding> run_lint(const std::vector<SourceFile>& files,
                                            std::vector<AllowlistEntry>& allowlist);

}  // namespace carbonedge::lint
