// carbonedge_lint — a determinism linter for the CarbonEdge tree.
//
// The repo's load-bearing guarantee is that sweep, sim, solver, and serve
// output is byte-identical across CARBONEDGE_THREADS. The TSan job and the
// determinism smoke gate enforce that dynamically, for the runs they happen
// to exercise; this linter rejects the known *sources* of nondeterminism at
// the source level, always, on every file:
//
//   D1  banned nondeterminism primitives: std::rand/srand, random_device,
//       *_clock::now, time(nullptr), this_thread::get_id, and ordered
//       containers keyed on pointers (iteration order = allocation order).
//   D2  iteration over unordered_map/unordered_set in any form (range-for
//       or .begin() loops) must either be the serial-snapshot idiom or
//       carry a reasoned `// lint: unordered-iteration-ok(...)` annotation
//       — folding or emitting in bucket order is how fp sums drift.
//   D3  inside parallel sections (lambdas passed to parallel_items /
//       parallel_for / ThreadPool::submit, directly or via a named lambda):
//       no RNG draws (coordinator-only RNG is the PR 5 contract) and no
//       mutation of shared member state (`name_` identifiers) except
//       disjoint-slot writes (`name_[index] = ...`).
//   D4  `float` is banned in the accounting/telemetry layers (src/sim,
//       src/core): the store codecs and the replay oracle are a bit-exact
//       double contract.
//   D5  std::getenv only inside the util::env shim, so every environment
//       input the process reads is auditable in one place.
//   H1  header hygiene: `#pragma once` required, `using namespace` banned
//       in headers.
//
// Findings are suppressible only with a reasoned in-source annotation
//
//   // lint: <token>(<reason>)
//
// on the finding's line or the line directly above it, or with an entry in
// the checked-in allowlist (`<rule> <path> <reason>` per line). Suppression
// tokens: nondeterminism-ok (D1), unordered-iteration-ok (D2),
// parallel-state-ok (D3), float-ok (D4), getenv-ok (D5), header-ok (H1).
// The tool validates its own escape hatches: a malformed annotation, an
// unknown token, an empty reason, or a suppression that matches no finding
// is itself an error (rule id LINT), so the suppression set can never rot.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace carbonedge::lint {

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;      // "D1".."D5", "H1", or "LINT" (meta errors)
  std::string message;
};

/// "file:line: rule-id: message" — the one diagnostic shape everything emits.
[[nodiscard]] std::string format(const Finding& finding);

/// A file queued for linting. `path` is the repo-relative label used in
/// diagnostics, allowlist matching, and the D4 path gate.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One `// lint: <token>(<reason>)` suppression extracted from a comment.
struct Annotation {
  std::size_t line = 0;  // line the comment ends on
  std::string token;
  std::string reason;
  bool malformed = false;
  std::string error;  // set when malformed
  bool used = false;
};

/// One `<rule> <path> <reason...>` line of the checked-in allowlist.
struct AllowlistEntry {
  std::size_t line = 0;
  std::string rule;
  std::string path;
  std::string reason;
  bool used = false;
};

/// Returns `source` with identical length and line structure, but with
/// comment bodies and string/char/raw-string literal contents blanked to
/// spaces — the view every rule scans, so nothing inside a comment or
/// literal can ever fire (or suppress) a rule.
[[nodiscard]] std::string strip_comments_and_literals(std::string_view source);

/// Extracts lint annotations from comment text only (an annotation spelled
/// inside a string literal is not an annotation). Malformed annotations are
/// returned with `malformed` set so the engine can report them.
[[nodiscard]] std::vector<Annotation> extract_annotations(std::string_view source);

/// Parses the allowlist; malformed lines become LINT findings against
/// `label`.
[[nodiscard]] std::vector<AllowlistEntry> parse_allowlist(std::string_view content,
                                                          std::string_view label,
                                                          std::vector<Finding>& errors);

/// Lints the whole file set: a first pass collects every unordered-container
/// variable name in the tree (members declared in a header are iterated in
/// the matching .cpp), a second pass runs the rules per file, then
/// annotations and the allowlist are applied and validated. Findings come
/// back sorted by (file, line) with every unused suppression reported.
/// `allowlist` may be empty; entries consumed by a finding get `used` set.
[[nodiscard]] std::vector<Finding> run_lint(const std::vector<SourceFile>& files,
                                            std::vector<AllowlistEntry>& allowlist);

}  // namespace carbonedge::lint
