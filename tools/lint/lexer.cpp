#include "lexer.hpp"

#include <algorithm>
#include <cctype>
#include <regex>
#include <utility>

namespace carbonedge::lint {

bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// One pass over the raw bytes: comments are collected (for annotation
/// extraction) and blanked, string/char/raw-string literal *contents* are
/// blanked (delimiters kept), everything else is copied through. Line
/// structure is preserved exactly so offsets map 1:1 onto line numbers.
LexResult lex(std::string_view src) {
  LexResult out;
  out.stripped.reserve(src.size());
  const std::size_t n = src.size();
  std::size_t i = 0;
  std::size_t line = 1;
  const auto put = [&](char c) { out.stripped.push_back(c); };
  const auto blank = [&](char c) {
    if (c == '\n') {
      put('\n');
      ++line;
    } else {
      put(' ');
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      put('\n');
      ++line;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {  // line comment
      put('/');
      put('/');
      i += 2;
      std::string text;
      while (i < n && src[i] != '\n') {
        text.push_back(src[i]);
        put(' ');
        ++i;
      }
      out.comments.push_back({std::move(text), line});
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {  // block comment
      put('/');
      put('*');
      i += 2;
      std::string text;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        text.push_back(src[i]);
        blank(src[i]);
        ++i;
      }
      if (i + 1 < n) {
        put('*');
        put('/');
        i += 2;
      } else if (i < n) {  // unterminated: swallow the final char
        text.push_back(src[i]);
        blank(src[i]);
        ++i;
      }
      out.comments.push_back({std::move(text), line});
      continue;
    }
    if (c == '"') {
      // Raw string? Look back over an optional encoding prefix for an R
      // that is not the tail of a longer identifier.
      bool raw = false;
      if (i >= 1 && src[i - 1] == 'R') {
        std::size_t start = i - 1;  // candidate prefix start
        if (start >= 1 && (src[start - 1] == 'u' || src[start - 1] == 'U' ||
                           src[start - 1] == 'L')) {
          --start;
        } else if (start >= 2 && src[start - 1] == '8' && src[start - 2] == 'u') {
          start -= 2;
        }
        raw = start == 0 || !ident_char(src[start - 1]);
      }
      if (raw) {
        // Validate the delimiter: raw-string syntax is R"delim( ... )delim".
        std::size_t d = i + 1;
        while (d < n && d - (i + 1) <= 16 && src[d] != '(' && src[d] != ')' &&
               src[d] != '\\' && src[d] != '"' && src[d] != '\n' && src[d] != ' ') {
          ++d;
        }
        if (d < n && src[d] == '(') {
          const std::string terminator =
              ")" + std::string(src.substr(i + 1, d - (i + 1))) + "\"";
          put('"');
          ++i;
          while (i < d + 1) {  // delimiter + '(' kept verbatim
            put(src[i]);
            ++i;
          }
          const std::size_t end = src.find(terminator, i);
          const std::size_t stop = end == std::string_view::npos ? n : end;
          while (i < stop) {
            blank(src[i]);
            ++i;
          }
          for (std::size_t k = 0; k < terminator.size() && i < n; ++k, ++i) put(src[i]);
          continue;
        }
        // No valid delimiter: fall through and treat it as an ordinary
        // string (it was something like MACRO_ENDING_IN_R "...").
      }
      put('"');
      ++i;
      while (i < n && src[i] != '"' && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] != '\n') {
          put(' ');
          put(' ');
          i += 2;
          continue;
        }
        put(' ');
        ++i;
      }
      if (i < n && src[i] == '"') {
        put('"');
        ++i;
      }
      continue;
    }
    if (c == '\'') {
      // A quote glued to an identifier/number is a digit separator
      // (1'000'000), not a character literal.
      if (i >= 1 && ident_char(src[i - 1])) {
        put('\'');
        ++i;
        continue;
      }
      put('\'');
      ++i;
      while (i < n && src[i] != '\'' && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] != '\n') {
          put(' ');
          put(' ');
          i += 2;
          continue;
        }
        put(' ');
        ++i;
      }
      if (i < n && src[i] == '\'') {
        put('\'');
        ++i;
      }
      continue;
    }
    put(c);
    ++i;
  }
  return out;
}

void parse_annotation_text(const Comment& comment, std::vector<Annotation>& out) {
  // Word boundary required: prose like "carbonedge_lint: one pass" is not
  // an annotation.
  std::size_t pos = comment.text.find("lint:");
  while (pos != std::string::npos && pos > 0 && ident_char(comment.text[pos - 1])) {
    pos = comment.text.find("lint:", pos + 1);
  }
  if (pos == std::string::npos) return;
  Annotation ann;
  ann.line = comment.end_line;
  std::size_t i = pos + 5;
  const std::string& text = comment.text;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
  if (i < text.size() && text[i] == '<') return;  // `lint: <token>(<reason>)` syntax doc
  while (i < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[i])) != 0 || text[i] == '-')) {
    ann.token.push_back(text[i]);
    ++i;
  }
  if (ann.token.empty()) {
    ann.malformed = true;
    ann.error = "annotation is missing a suppression token (want `lint: <token>(<reason>)`)";
    out.push_back(std::move(ann));
    return;
  }
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
  if (i >= text.size() || text[i] != '(') {
    ann.malformed = true;
    ann.error = "suppression `" + ann.token + "` has no (<reason>) — every escape hatch " +
                "must say why";
    out.push_back(std::move(ann));
    return;
  }
  ++i;
  std::size_t depth = 1;
  while (i < text.size() && depth > 0) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') {
      --depth;
      if (depth == 0) break;
    }
    ann.reason.push_back(text[i]);
    ++i;
  }
  if (depth != 0) {
    ann.malformed = true;
    ann.error = "suppression `" + ann.token + "` has an unterminated (<reason>)";
    out.push_back(std::move(ann));
    return;
  }
  const auto first = ann.reason.find_first_not_of(" \t");
  const auto last = ann.reason.find_last_not_of(" \t");
  ann.reason = first == std::string::npos ? "" : ann.reason.substr(first, last - first + 1);
  if (ann.reason.empty()) {
    ann.malformed = true;
    ann.error = "suppression `" + ann.token + "` has an empty reason";
    out.push_back(std::move(ann));
    return;
  }
  if (token_rules().find(ann.token) == token_rules().end()) {
    ann.malformed = true;
    ann.error = "unknown suppression token `" + ann.token + "`";
  }
  out.push_back(std::move(ann));
}

std::size_t line_of(const FileScan& fs, std::size_t offset) {
  const auto it =
      std::upper_bound(fs.line_starts.begin(), fs.line_starts.end(), offset);
  return static_cast<std::size_t>(it - fs.line_starts.begin());
}

std::vector<std::size_t> match_brackets(const std::string& stripped) {
  std::vector<std::size_t> match(stripped.size(), std::string::npos);
  // One stack per bracket kind: a stray `)` inside an unbalanced macro must
  // not steal the partner of an enclosing `{`.
  std::vector<std::size_t> parens;
  std::vector<std::size_t> squares;
  std::vector<std::size_t> braces;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    switch (stripped[i]) {
      case '(': parens.push_back(i); break;
      case '[': squares.push_back(i); break;
      case '{': braces.push_back(i); break;
      case ')':
        if (!parens.empty()) {
          match[parens.back()] = i;
          match[i] = parens.back();
          parens.pop_back();
        }
        break;
      case ']':
        if (!squares.empty()) {
          match[squares.back()] = i;
          match[i] = squares.back();
          squares.pop_back();
        }
        break;
      case '}':
        if (!braces.empty()) {
          match[braces.back()] = i;
          match[i] = braces.back();
          braces.pop_back();
        }
        break;
      default: break;
    }
  }
  return match;
}

namespace {

/// `#include` directives are read from the raw source: the lexer blanks
/// quoted paths, so the stripped view cannot carry them.
void parse_includes(const std::string& raw, std::vector<IncludeDirective>& out) {
  static const std::regex kInclude(R"(^[ \t]*#[ \t]*include[ \t]*(["<])([^">]+)[">])");
  std::size_t line = 1;
  std::size_t start = 0;
  while (start <= raw.size()) {
    std::size_t end = raw.find('\n', start);
    if (end == std::string::npos) end = raw.size();
    const std::string text = raw.substr(start, end - start);
    std::smatch m;
    if (std::regex_search(text, m, kInclude)) {
      out.push_back({line, m[2].str(), m[1].str() == "\""});
    }
    if (end == raw.size()) break;
    start = end + 1;
    ++line;
  }
}

}  // namespace

FileScan scan_file(const SourceFile& file) {
  FileScan fs;
  fs.file = &file;
  LexResult lexed = lex(file.content);
  fs.stripped = std::move(lexed.stripped);
  for (const Comment& comment : lexed.comments) {
    parse_annotation_text(comment, fs.annotations);
  }
  fs.line_starts.push_back(0);
  for (std::size_t i = 0; i < fs.stripped.size(); ++i) {
    if (fs.stripped[i] == '\n') fs.line_starts.push_back(i + 1);
  }
  parse_includes(file.content, fs.includes);
  fs.bracket_match = match_brackets(fs.stripped);
  return fs;
}

std::size_t skip_angles(const std::string& s, std::size_t open) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>') {
      if (depth == 0) return std::string::npos;
      if (--depth == 0) return i + 1;
    }
    if (s[i] == ';') return std::string::npos;  // statement ended: not a template
  }
  return std::string::npos;
}

std::size_t skip_balanced(const std::string& s, std::size_t open, char open_ch,
                          char close_ch) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == open_ch) ++depth;
    if (s[i] == close_ch && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) ++i;
  return i;
}

}  // namespace carbonedge::lint
