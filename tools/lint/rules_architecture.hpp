// Cross-TU architecture pass: the module graph over
// src/{util,geo,carbon,sim,core,solver,store,runner,serve,analysis} +
// tools + bench + examples + tests, checked against the layer DAG declared
// in tools/lint/layers.txt.
//
//   A1  upward/undeclared cross-module dependency (module(includer) must be
//       allowed to reach module(header) in the closure of layers.txt)
//   A2  include cycle among the tree's own files (DFS, each cycle reported
//       once with its canonical deterministic path)
//   A3  src/* including from bench/, tests/, or examples/
//   A4  IWYU-lite: a quoted include of one of our headers none of whose
//       exported names the includer references
//   A5  IWYU-lite: direct use of a symbol whose unique exporting header is
//       reachable only transitively (the chain is reported and an insertion
//       edit emitted)
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lexer.hpp"
#include "lint.hpp"

namespace carbonedge::lint {

/// The declared layer DAG. `deps` holds the direct declarations from
/// layers.txt; `closure` the transitive reachability the A1 check admits.
struct LayerGraph {
  std::map<std::string, std::vector<std::string>> deps;
  std::map<std::string, std::set<std::string>> closure;
  bool configured = false;
};

/// Parses layers.txt (`module: dep dep ...` per line, `#` comments).
/// Unknown dep names and cycles in the declared graph are LINT errors
/// against `label`; a graph with errors comes back unconfigured so A1 does
/// not run on a broken declaration.
[[nodiscard]] LayerGraph parse_layers(std::string_view text, std::string_view label,
                                      std::vector<Finding>& errors);

/// The module a repo-relative path belongs to: the subdirectory name under
/// src/ ("util", "carbon", ...), or the top-level directory ("tools",
/// "bench", "examples", "tests"). Empty for paths outside the known roots.
[[nodiscard]] std::string module_of(std::string_view path);

/// Names a header exports at namespace scope: type definitions (not forward
/// declarations), enumerators, functions, variables, aliases, and macros.
/// Class/function bodies are skipped — a member is referenced through its
/// type's name. Heuristic by design: used only to make A4/A5 conservative.
[[nodiscard]] std::set<std::string> collect_exports(const FileScan& header);

struct ArchOutput {
  std::vector<Finding> findings;
  std::vector<IncludeEdit> edits;
  std::string graph_dot;  // the observed module graph, Graphviz syntax
};

/// Runs A1–A5 over the whole scan set. `layers` may be unconfigured, which
/// disables A1 and the undeclared-module check but not A2–A5.
[[nodiscard]] ArchOutput run_architecture(const std::vector<FileScan>& scans,
                                          const LayerGraph& layers);

}  // namespace carbonedge::lint
