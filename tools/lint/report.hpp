// Output back-ends for the linter: the classic text lines, machine-readable
// JSON, SARIF 2.1.0 (consumed by the CI code-scanning upload), the
// ratcheting baseline, and the unified diff `--fix-includes` prints.
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace carbonedge::lint {

/// `{"findings": [{"file", "line", "rule", "message"}, ...]}`.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

/// Minimal SARIF 2.1.0 document: one run, one driver, one result per
/// finding with ruleId / level / message / physical location.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

/// Baseline keys are `rule|file|message` — deliberately line-free so that
/// unrelated edits shifting a file do not resurrect baselined findings.
[[nodiscard]] std::string baseline_key(const Finding& finding);
[[nodiscard]] std::set<std::string> parse_baseline(std::string_view text);
[[nodiscard]] std::string write_baseline(const std::vector<Finding>& findings);

/// Findings whose key is NOT in the baseline (the ones that gate).
[[nodiscard]] std::vector<Finding> filter_baseline(const std::vector<Finding>& findings,
                                                   const std::set<std::string>& baseline);

/// Renders A4 removals / A5 insertions as one unified diff (zero context,
/// `patch -p0`-applicable from the lint root).
[[nodiscard]] std::string to_unified_diff(const std::vector<IncludeEdit>& edits,
                                          const std::vector<SourceFile>& files);

}  // namespace carbonedge::lint
