// Token-level determinism rules (D1, D2, D4, D5) and header hygiene (H1).
// See lint.hpp for the rule catalog; the parallel-region rules (D3, D6–D8)
// live in rules_dataflow.hpp.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "lint.hpp"

namespace carbonedge::lint {

/// Records every variable declared as an unordered associative container.
/// Members declared in one file (a header) are iterated in another (the
/// matching .cpp), so the name set is collected tree-wide before any rule
/// runs. Shared by D2 and D7.
void collect_unordered_names(const FileScan& fs, std::set<std::string>& names);

void rule_d1(const FileScan& fs, std::vector<Finding>& findings);
void rule_d2(const FileScan& fs, const std::set<std::string>& unordered_names,
             std::vector<Finding>& findings);
void rule_d4(const FileScan& fs, std::vector<Finding>& findings);
void rule_d5(const FileScan& fs, std::vector<Finding>& findings);
void rule_h1(const FileScan& fs, std::vector<Finding>& findings);

}  // namespace carbonedge::lint
