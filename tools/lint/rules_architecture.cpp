#include "rules_architecture.hpp"

#include <algorithm>
#include <functional>
#include <regex>
#include <sstream>
#include <utility>

namespace carbonedge::lint {

namespace {

[[nodiscard]] std::string trim(std::string text) {
  const auto first = text.find_first_not_of(" \t\r");
  const auto last = text.find_last_not_of(" \t\r");
  return first == std::string::npos ? "" : text.substr(first, last - first + 1);
}

[[nodiscard]] std::string dirname_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? "" : std::string(path.substr(0, slash));
}

[[nodiscard]] std::string basename_of(std::string_view path) {
  const std::size_t slash = path.rfind('/');
  return std::string(slash == std::string_view::npos ? path : path.substr(slash + 1));
}

[[nodiscard]] std::string stem_of(std::string_view path) {
  std::string base = basename_of(path);
  const std::size_t dot = base.rfind('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

[[nodiscard]] bool is_header(std::string_view path) {
  return path.size() >= 2 &&
         (path.rfind(".hpp") == path.size() - 4 || path.rfind(".hh") == path.size() - 3 ||
          path.rfind(".h") == path.size() - 2);
}

[[nodiscard]] std::set<std::string> ident_set(const std::string& stripped) {
  std::set<std::string> tokens;
  std::size_t i = 0;
  while (i < stripped.size()) {
    const char c = stripped[i];
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::string token;
      while (i < stripped.size() && ident_char(stripped[i])) token.push_back(stripped[i++]);
      tokens.insert(std::move(token));
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      while (i < stripped.size() && ident_char(stripped[i])) ++i;  // skip numbers
    } else {
      ++i;
    }
  }
  return tokens;
}

/// The identifier token immediately before offset `at` (skipping
/// whitespace), or "" when the preceding token is not an identifier.
[[nodiscard]] std::string ident_before(const std::string& text, std::size_t at) {
  std::size_t i = at;
  while (i > 0 && std::isspace(static_cast<unsigned char>(text[i - 1])) != 0) --i;
  std::size_t end = i;
  while (i > 0 && ident_char(text[i - 1])) --i;
  return text.substr(i, end - i);
}

[[nodiscard]] std::vector<std::string> word_tokens(const std::string& text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    if (std::isalpha(static_cast<unsigned char>(text[i])) != 0 || text[i] == '_') {
      std::string token;
      while (i < text.size() && ident_char(text[i])) token.push_back(text[i++]);
      tokens.push_back(std::move(token));
    } else {
      ++i;
    }
  }
  return tokens;
}

/// Collects exports out of one namespace-scope "statement" that ended in
/// `;` (terminator == ';') or `{` (terminator == '{').
void collect_statement(const std::string& buffer, char terminator,
                       std::set<std::string>& exports) {
  const std::vector<std::string> tokens = word_tokens(buffer);
  if (tokens.empty()) return;

  // Type definitions / forward declarations. The name follows the *last*
  // class/struct/enum/union keyword (`template <class T> struct Foo`).
  std::size_t kw = tokens.size();
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i] == "class" || tokens[i] == "struct" || tokens[i] == "union" ||
        tokens[i] == "enum") {
      kw = i;
    }
  }
  if (kw != tokens.size()) {
    if (terminator == ';') return;  // forward declaration exports nothing
    if (kw + 1 < tokens.size()) exports.insert(tokens[kw + 1]);
    return;
  }
  if (tokens.front() == "using") {
    if (tokens.size() >= 2 && tokens[1] != "namespace") exports.insert(tokens[1]);
    return;
  }
  if (tokens.front() == "typedef") {
    exports.insert(tokens.back());
    return;
  }
  if (tokens.front() == "template" || tokens.front() == "static_assert" ||
      tokens.front() == "friend" || tokens.front() == "extern") {
    // `extern "C"` blocks and bare template clauses carry no name of their
    // own; a subsequent statement will.
    if (tokens.size() == 1) return;
  }

  // `name = ...` (variables, incl. brace-init via '{'), tracked outside
  // template argument lists so a default template argument's '=' is not a
  // variable initializer.
  int angle = 0;
  int paren = 0;
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    const char c = buffer[i];
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (c == '=' && angle == 0 && paren == 0) {
      if (i + 1 < buffer.size() && buffer[i + 1] == '=') break;
      if (i > 0 && (buffer[i - 1] == '=' || buffer[i - 1] == '!' || buffer[i - 1] == '<' ||
                    buffer[i - 1] == '>')) {
        break;
      }
      const std::string name = ident_before(buffer, i);
      if (!name.empty()) exports.insert(name);
      return;
    }
  }

  // `name(...)` — a function declaration or definition.
  angle = 0;
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    const char c = buffer[i];
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == '(' && angle == 0) {
      const std::string name = ident_before(buffer, i);
      if (!name.empty()) exports.insert(name);
      return;
    }
  }

  // `Type name;` / `Type name{...}` — a variable without initializer, or a
  // brace-initialized one.
  if (tokens.size() >= 2) exports.insert(tokens.back());
}

}  // namespace

std::string module_of(std::string_view path) {
  if (path.rfind("src/", 0) == 0) {
    const std::string_view rest = path.substr(4);
    const std::size_t slash = rest.find('/');
    return slash == std::string_view::npos ? "" : std::string(rest.substr(0, slash));
  }
  for (const char* top : {"tools", "bench", "examples", "tests"}) {
    const std::string prefix = std::string(top) + "/";
    if (path.rfind(prefix, 0) == 0) return top;
  }
  return "";
}

LayerGraph parse_layers(std::string_view text, std::string_view label,
                        std::vector<Finding>& errors) {
  LayerGraph graph;
  if (text.empty()) return graph;
  const std::size_t errors_before = errors.size();
  std::istringstream stream{std::string(text)};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(stream, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      errors.push_back({std::string(label), lineno, "LINT",
                        "malformed layers line (want `module: dep dep ...`): `" + line +
                            "`"});
      continue;
    }
    const std::string module = trim(line.substr(0, colon));
    if (module.empty() || module.find(' ') != std::string::npos) {
      errors.push_back({std::string(label), lineno, "LINT",
                        "malformed layers module name: `" + line + "`"});
      continue;
    }
    if (graph.deps.count(module) != 0) {
      errors.push_back({std::string(label), lineno, "LINT",
                        "module `" + module + "` declared twice in layers"});
      continue;
    }
    std::istringstream deps(line.substr(colon + 1));
    std::string dep;
    std::vector<std::string> list;
    while (deps >> dep) list.push_back(dep);
    graph.deps[module] = std::move(list);
  }
  for (const auto& [module, deps] : graph.deps) {
    for (const std::string& dep : deps) {
      if (graph.deps.count(dep) == 0) {
        errors.push_back({std::string(label), 0, "LINT",
                          "layer `" + module + "` depends on undeclared module `" + dep +
                              "`"});
      }
      if (dep == module) {
        errors.push_back({std::string(label), 0, "LINT",
                          "layer `" + module + "` depends on itself"});
      }
    }
  }

  // Closure + cycle check over the declared graph (the declaration itself
  // must be a DAG before it can police anything).
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> stack;
  const std::function<void(const std::string&)> dfs = [&](const std::string& module) {
    color[module] = 1;
    stack.push_back(module);
    for (const std::string& dep : graph.deps[module]) {
      if (graph.deps.count(dep) == 0) continue;
      if (color[dep] == 0) {
        dfs(dep);
      } else if (color[dep] == 1) {
        std::string chain;
        for (auto it = std::find(stack.begin(), stack.end(), dep); it != stack.end();
             ++it) {
          chain += *it + " -> ";
        }
        errors.push_back({std::string(label), 0, "LINT",
                          "layers declaration contains a cycle: " + chain + dep});
      }
      for (const std::string& reachable : graph.closure[dep]) {
        graph.closure[module].insert(reachable);
      }
      graph.closure[module].insert(dep);
    }
    stack.pop_back();
    color[module] = 2;
  };
  for (const auto& [module, deps] : graph.deps) {
    (void)deps;
    if (color[module] == 0) dfs(module);
  }
  graph.configured = errors.size() == errors_before;
  return graph;
}

std::set<std::string> collect_exports(const FileScan& header) {
  std::set<std::string> exports;
  // Macros come from the raw text (the stripped view keeps them too, but
  // the raw scan is line-anchored and cheap).
  static const std::regex kDefine(R"(^[ \t]*#[ \t]*define[ \t]+([A-Za-z_][A-Za-z0-9_]*))");
  {
    std::istringstream lines(header.file->content);
    std::string line;
    while (std::getline(lines, line)) {
      std::smatch m;
      if (std::regex_search(line, m, kDefine)) exports.insert(m[1].str());
    }
  }

  // Preprocessor lines (already harvested above) are blanked so a directive
  // never leaks into the namespace-scope statement buffer below.
  std::string s = header.stripped;
  {
    bool continued = false;
    std::size_t line_start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
      if (i != s.size() && s[i] != '\n') continue;
      std::size_t first = line_start;
      while (first < i && (s[first] == ' ' || s[first] == '\t')) ++first;
      const bool directive = continued || (first < i && s[first] == '#');
      if (directive) {
        continued = i > line_start && s[i - 1] == '\\';
        for (std::size_t k = line_start; k < i; ++k) s[k] = ' ';
      } else {
        continued = false;
      }
      line_start = i + 1;
    }
  }
  std::string buffer;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == ';') {
      collect_statement(buffer, ';', exports);
      buffer.clear();
      continue;
    }
    if (c == '}') {  // end of a namespace block entered below
      buffer.clear();
      continue;
    }
    if (c == '{') {
      const std::vector<std::string> tokens = word_tokens(buffer);
      const bool is_namespace =
          !tokens.empty() && (tokens.front() == "namespace" ||
                              (tokens.size() >= 2 && tokens[0] == "inline" &&
                               tokens[1] == "namespace"));
      if (is_namespace) {  // descend: namespace members are exports too
        buffer.clear();
        continue;
      }
      const bool is_enum =
          std::find(tokens.begin(), tokens.end(), "enum") != tokens.end();
      collect_statement(buffer, '{', exports);
      const std::size_t close =
          i < header.bracket_match.size() ? header.bracket_match[i] : std::string::npos;
      if (is_enum && close != std::string::npos) {
        // Enumerators are namespace-visible for unscoped enums; collecting
        // them for scoped enums too only makes A4 more conservative.
        for (const std::string& chunk :
             [&] {
               std::vector<std::string> parts;
               std::string current;
               for (std::size_t k = i + 1; k < close; ++k) {
                 if (s[k] == ',') {
                   parts.push_back(current);
                   current.clear();
                 } else {
                   current.push_back(s[k]);
                 }
               }
               parts.push_back(current);
               return parts;
             }()) {
          const std::vector<std::string> names = word_tokens(chunk);
          if (!names.empty()) exports.insert(names.front());
        }
      }
      if (close == std::string::npos) break;  // unbalanced: stop collecting
      i = close;  // skip the body (members are reached through the type name)
      buffer.clear();
      continue;
    }
    buffer.push_back(c);
  }
  return exports;
}

ArchOutput run_architecture(const std::vector<FileScan>& scans, const LayerGraph& layers) {
  ArchOutput out;
  std::map<std::string, const FileScan*> by_path;
  for (const FileScan& fs : scans) by_path[fs.file->path] = &fs;

  const auto resolve = [&](const FileScan& fs, const std::string& target) -> std::string {
    const std::string dir = dirname_of(fs.file->path);
    for (const std::string& candidate :
         {dir.empty() ? target : dir + "/" + target, "src/" + target, target}) {
      if (by_path.count(candidate) != 0) return candidate;
    }
    return "";
  };

  // Resolved include graph (adjacency keyed by path; values sorted by the
  // include's position so every walk below is deterministic).
  std::map<std::string, std::vector<std::pair<std::string, std::size_t>>> adj;
  for (const FileScan& fs : scans) {
    const std::string module = module_of(fs.file->path);
    const bool src_module = fs.file->path.rfind("src/", 0) == 0;
    for (const IncludeDirective& inc : fs.includes) {
      if (!inc.quoted) continue;
      const std::string resolved = resolve(fs, inc.target);
      const std::string& shape = resolved.empty() ? inc.target : resolved;
      if (src_module) {
        for (const char* banned : {"bench/", "tests/", "examples/"}) {
          if (shape.rfind(banned, 0) == 0) {
            out.findings.push_back(
                {fs.file->path, inc.line, "A3",
                 "src/ may not include from " + std::string(banned) +
                     " (`" + inc.target + "`): the library must stand without its "
                     "harnesses"});
          }
        }
      }
      if (resolved.empty() || resolved == fs.file->path) continue;
      adj[fs.file->path].emplace_back(resolved, inc.line);
    }
  }

  // A1 + the observed module graph.
  std::set<std::pair<std::string, std::string>> module_edges;
  std::set<std::string> undeclared_reported;
  for (const FileScan& fs : scans) {
    const std::string from_module = module_of(fs.file->path);
    if (layers.configured && !from_module.empty() &&
        layers.deps.count(from_module) == 0 &&
        undeclared_reported.insert(from_module).second) {
      out.findings.push_back({fs.file->path, 1, "LINT",
                              "module `" + from_module +
                                  "` is not declared in layers.txt — add it with its "
                                  "allowed dependencies"});
    }
    for (const auto& [to_path, line] : adj[fs.file->path]) {
      const std::string to_module = module_of(to_path);
      if (from_module.empty() || to_module.empty() || from_module == to_module) continue;
      module_edges.insert({from_module, to_module});
      if (!layers.configured) continue;
      const auto allowed = layers.closure.find(from_module);
      if (layers.deps.count(from_module) == 0 || layers.deps.count(to_module) == 0) {
        continue;  // undeclared module already reported above
      }
      if (allowed != layers.closure.end() && allowed->second.count(to_module) != 0) {
        continue;
      }
      std::string allowed_list;
      if (allowed != layers.closure.end()) {
        for (const std::string& dep : allowed->second) {
          allowed_list += (allowed_list.empty() ? "" : ", ") + dep;
        }
      }
      out.findings.push_back(
          {fs.file->path, line, "A1",
           "layer violation: module `" + from_module + "` may not depend on `" +
               to_module + "` (" + fs.file->path + " -> " + to_path +
               "); layers.txt allows " + from_module + " -> {" + allowed_list + "}"});
    }
  }

  std::ostringstream dot;
  dot << "digraph carbonedge_modules {\n  rankdir=BT;\n  node [shape=box];\n";
  for (const auto& [from, to] : module_edges) {
    dot << "  \"" << from << "\" -> \"" << to << "\";\n";
  }
  dot << "}\n";
  out.graph_dot = dot.str();

  // A2: include cycles, each reported once on its canonical path.
  {
    std::map<std::string, int> color;
    std::vector<std::string> stack;
    std::set<std::string> seen_cycles;
    const std::function<void(const std::string&)> dfs = [&](const std::string& path) {
      color[path] = 1;
      stack.push_back(path);
      for (const auto& [next, line] : adj[path]) {
        (void)line;
        if (color[next] == 0) {
          dfs(next);
        } else if (color[next] == 1) {
          std::vector<std::string> cycle(std::find(stack.begin(), stack.end(), next),
                                         stack.end());
          const auto min_it = std::min_element(cycle.begin(), cycle.end());
          std::rotate(cycle.begin(), min_it, cycle.end());
          std::string chain;
          for (const std::string& node : cycle) chain += node + " -> ";
          chain += cycle.front();
          if (!seen_cycles.insert(chain).second) continue;
          std::size_t at_line = 1;
          for (const auto& [to, l] : adj[cycle.front()]) {
            if (to == cycle[1 % cycle.size()]) at_line = l;
          }
          out.findings.push_back(
              {cycle.front(), at_line, "A2", "include cycle: " + chain});
        }
      }
      stack.pop_back();
      color[path] = 2;
    };
    for (const auto& [path, edges] : adj) {
      (void)edges;
      if (color[path] == 0) dfs(path);
    }
  }

  // Header export sets and per-file identifier sets for the IWYU passes.
  std::map<std::string, std::set<std::string>> exports;
  for (const FileScan& fs : scans) {
    if (is_header(fs.file->path)) exports[fs.file->path] = collect_exports(fs);
  }
  std::map<std::string, std::set<std::string>> tokens;
  for (const FileScan& fs : scans) tokens[fs.file->path] = ident_set(fs.stripped);

  // A4: direct include whose header contributes no referenced name.
  for (const FileScan& fs : scans) {
    const std::set<std::string>& used = tokens[fs.file->path];
    for (const auto& [to_path, line] : adj[fs.file->path]) {
      const auto exported = exports.find(to_path);
      if (exported == exports.end() || exported->second.empty()) continue;
      if (stem_of(to_path) == stem_of(fs.file->path)) continue;  // companion header
      bool referenced = false;
      for (const std::string& name : exported->second) {
        if (used.count(name) != 0) {
          referenced = true;
          break;
        }
      }
      if (referenced) continue;
      out.findings.push_back(
          {fs.file->path, line, "A4",
           "unused include: nothing exported by " + to_path +
               " is referenced here — drop it (or annotate unused-include-ok if it "
               "is a deliberate re-export)"});
      out.edits.push_back({fs.file->path, line, true, "A4", ""});
    }
  }

  // A5: symbol used directly, header reachable only transitively.
  std::map<std::string, std::string> unique_exporter;
  {
    std::map<std::string, int> counts;
    for (const auto& [path, names] : exports) {
      for (const std::string& name : names) {
        if (name.size() < 4) continue;  // too short to be meaningful evidence
        ++counts[name];
        unique_exporter[name] = path;
      }
    }
    for (const auto& [name, count] : counts) {
      if (count != 1) unique_exporter.erase(name);
    }
  }
  for (const FileScan& fs : scans) {
    const std::string& from = fs.file->path;
    std::set<std::string> direct;
    for (const auto& [to_path, line] : adj[from]) {
      (void)line;
      direct.insert(to_path);
    }
    if (direct.empty()) continue;
    // BFS for the transitive set, remembering each file's first hop so the
    // offending chain can be printed.
    std::map<std::string, std::string> parent;
    std::vector<std::string> queue(direct.begin(), direct.end());
    std::set<std::string> visited(direct.begin(), direct.end());
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::string current = queue[head];
      for (const auto& [next, line] : adj[current]) {
        (void)line;
        if (next == from || !visited.insert(next).second) continue;
        parent[next] = current;
        queue.push_back(next);
      }
    }
    const std::set<std::string>& used = tokens[from];
    for (const std::string& header : queue) {
      if (direct.count(header) != 0) continue;
      const auto exported = exports.find(header);
      if (exported == exports.end()) continue;
      // Companion-header exemption: what x.cpp reaches through x.hpp is part
      // of its own declared interface, not a hidden transitive dependency.
      std::string entry = header;
      for (auto hop = parent.find(entry); hop != parent.end();
           hop = parent.find(entry)) {
        entry = hop->second;
      }
      if (stem_of(entry) == stem_of(from)) continue;
      std::vector<std::string> evidence;
      for (const std::string& name : exported->second) {
        const auto owner = unique_exporter.find(name);
        if (owner == unique_exporter.end() || owner->second != header) continue;
        if (used.count(name) == 0) continue;
        evidence.push_back(name);
        if (evidence.size() == 3) break;
      }
      if (evidence.empty()) continue;
      std::string chain = header;
      for (auto hop = parent.find(header); hop != parent.end();
           hop = parent.find(hop->second)) {
        chain = hop->second + " -> " + chain;
      }
      chain = from + " -> " + chain;
      std::string names;
      for (const std::string& name : evidence) {
        names += (names.empty() ? "`" : ", `") + name + "`";
      }
      // The fix: insert the include in sorted position among the existing
      // quoted includes.
      std::string spelling = header;
      if (spelling.rfind("src/", 0) == 0) {
        spelling = spelling.substr(4);
      } else if (dirname_of(header) == dirname_of(from)) {
        spelling = basename_of(header);
      }
      std::size_t insert_line = 0;
      std::size_t finding_line = 1;
      for (const IncludeDirective& inc : fs.includes) {
        if (!inc.quoted) continue;
        if (finding_line == 1) finding_line = inc.line;
        if (inc.target < spelling) insert_line = inc.line + 1;
      }
      if (insert_line == 0) insert_line = finding_line;
      out.findings.push_back(
          {from, finding_line, "A5",
           "uses " + names + " from " + header + " which is only included "
               "transitively (" + chain + "); include \"" + spelling +
               "\" directly so the dependency survives refactors"});
      out.edits.push_back(
          {from, insert_line, false, "A5", "#include \"" + spelling + "\""});
    }
  }

  return out;
}

}  // namespace carbonedge::lint
