// Parallel-region dataflow rules. The lexer's token tree scopes each
// analysis to a structural region (a lambda body, a loop body) instead of a
// line window:
//
//   D3  RNG draws and shared-member (`name_`) mutation inside parallel
//       sections.
//   D6  structural verification of the sanctioned slot pattern: every write
//       inside a parallel section must target a subscripted lvalue whose
//       index derives from the lambda's item/index parameter or a by-value
//       capture (possibly through locals computed from them).
//   D7  order-sensitive accumulation: `x += ...` / `x = x + ...` into a
//       captured variable inside a parallel section, or into a loop-outer
//       variable inside a range-for over an unordered container.
//   D8  raw `.lock()` / `.unlock()` calls (RAII guards only).
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"
#include "lint.hpp"

namespace carbonedge::lint {

struct Region {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// One code region that executes on worker lanes: the body of a lambda
/// passed (directly, or via a named `auto body = [...]` variable) to
/// parallel_items / parallel_for / ThreadPool::submit, plus the names the
/// slot-index analysis treats as per-item seeds — the lambda's parameters
/// and its explicit by-value captures (each task gets its own copy, so
/// indexing by them is the disjoint-slot pattern).
struct ParallelRegion {
  Region body;
  std::vector<std::string> seeds;
};

[[nodiscard]] std::vector<ParallelRegion> parallel_regions_of(const FileScan& fs);

void rule_d3(const FileScan& fs, std::vector<Finding>& findings);
void rule_d6(const FileScan& fs, std::vector<Finding>& findings);
void rule_d7(const FileScan& fs, const std::set<std::string>& unordered_names,
             std::vector<Finding>& findings);
void rule_d8(const FileScan& fs, std::vector<Finding>& findings);

}  // namespace carbonedge::lint
