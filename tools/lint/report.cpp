#include "report.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace carbonedge::lint {

namespace {

[[nodiscard]] std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string to_json(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ",";
    out << "\n  {\"file\": \"" << json_escape(f.file) << "\", \"line\": " << f.line
        << ", \"rule\": \"" << json_escape(f.rule) << "\", \"message\": \""
        << json_escape(f.message) << "\"}";
  }
  if (!findings.empty()) out << "\n";
  out << "]}\n";
  return out.str();
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
         "master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"carbonedge_lint\",\n"
      << "      \"informationUri\": \"tools/lint\",\n"
      << "      \"rules\": [";
  const std::vector<RuleInfo>& catalog = rules();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (i != 0) out << ",";
    out << "\n        {\"id\": \"" << json_escape(catalog[i].id)
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(catalog[i].summary)
        << "\"}}";
  }
  out << "\n      ]\n"
      << "    }},\n"
      << "    \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i != 0) out << ",";
    out << "\n      {\"ruleId\": \"" << json_escape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.message) << "\"}, \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << json_escape(f.file)
        << "\"}, \"region\": {\"startLine\": " << (f.line == 0 ? 1 : f.line)
        << "}}}]}";
  }
  out << "\n    ]\n  }]\n}\n";
  return out.str();
}

std::string baseline_key(const Finding& finding) {
  return finding.rule + "|" + finding.file + "|" + finding.message;
}

std::set<std::string> parse_baseline(std::string_view text) {
  std::set<std::string> keys;
  std::istringstream stream{std::string(text)};
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    keys.insert(line);
  }
  return keys;
}

std::string write_baseline(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& f : findings) keys.insert(baseline_key(f));
  std::string out =
      "# carbonedge_lint baseline: one `rule|file|message` key per line.\n"
      "# A finding matching a key is reported but does not gate; regenerate\n"
      "# with --write-baseline only to ratchet DOWN, never to bury new debt.\n";
  for (const std::string& key : keys) {
    out += key;
    out += '\n';
  }
  return out;
}

std::vector<Finding> filter_baseline(const std::vector<Finding>& findings,
                                     const std::set<std::string>& baseline) {
  std::vector<Finding> fresh;
  for (const Finding& f : findings) {
    if (baseline.count(baseline_key(f)) == 0) fresh.push_back(f);
  }
  return fresh;
}

std::string to_unified_diff(const std::vector<IncludeEdit>& edits,
                            const std::vector<SourceFile>& files) {
  std::map<std::string, const SourceFile*> by_path;
  for (const SourceFile& file : files) by_path[file.path] = &file;

  std::map<std::string, std::vector<IncludeEdit>> per_file;
  for (const IncludeEdit& edit : edits) per_file[edit.file].push_back(edit);

  std::ostringstream out;
  for (auto& [path, file_edits] : per_file) {
    const auto found = by_path.find(path);
    if (found == by_path.end()) continue;
    std::vector<std::string> lines;
    {
      std::istringstream stream(found->second->content);
      std::string line;
      while (std::getline(stream, line)) lines.push_back(line);
    }
    std::stable_sort(file_edits.begin(), file_edits.end(),
                     [](const IncludeEdit& a, const IncludeEdit& b) {
                       if (a.line != b.line) return a.line < b.line;
                       return a.remove && !b.remove;  // removals before inserts
                     });
    out << "--- " << path << "\n+++ " << path << "\n";
    long delta = 0;  // lines added minus removed so far, for new-file offsets
    for (const IncludeEdit& edit : file_edits) {
      const long old_line = static_cast<long>(edit.line);
      if (edit.remove) {
        if (edit.line == 0 || edit.line > lines.size()) continue;
        out << "@@ -" << old_line << ",1 +" << (old_line - 1 + delta) << ",0 @@\n";
        out << "-" << lines[edit.line - 1] << "\n";
        --delta;
      } else {
        out << "@@ -" << (old_line - 1) << ",0 +" << (old_line + delta) << ",1 @@\n";
        out << "+" << edit.text << "\n";
        ++delta;
      }
    }
  }
  return out.str();
}

}  // namespace carbonedge::lint
