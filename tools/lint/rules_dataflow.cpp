#include "rules_dataflow.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <optional>
#include <regex>
#include <tuple>
#include <utility>

namespace carbonedge::lint {

namespace {

// --------------------------------------------------------- lambda parsing --

struct LambdaParts {
  Region captures;          // inside [ ]
  Region params;            // inside ( ); begin==end when absent
  Region body;              // inside { }
};

/// Parses a lambda literal whose '[' is at `open`.
[[nodiscard]] std::optional<LambdaParts> parse_lambda(const std::string& s,
                                                      std::size_t open) {
  LambdaParts parts;
  std::size_t i = skip_balanced(s, open, '[', ']');
  if (i == std::string::npos) return std::nullopt;
  parts.captures = {open + 1, i - 1};
  i = skip_ws(s, i);
  if (i < s.size() && s[i] == '(') {
    const std::size_t close = skip_balanced(s, i, '(', ')');
    if (close == std::string::npos) return std::nullopt;
    parts.params = {i + 1, close - 1};
    i = close;
  }
  // Skip specifiers (mutable, noexcept, -> Type) up to the body.
  while (i < s.size() && s[i] != '{') {
    if (s[i] == ';' || s[i] == ',' || s[i] == ')') return std::nullopt;  // not a lambda
    ++i;
  }
  if (i >= s.size()) return std::nullopt;
  const std::size_t close = skip_balanced(s, i, '{', '}');
  if (close == std::string::npos) return std::nullopt;
  parts.body = {i + 1, close - 1};
  return parts;
}

[[nodiscard]] std::string trim(std::string text) {
  const auto first = text.find_first_not_of(" \t\n\r");
  const auto last = text.find_last_not_of(" \t\n\r");
  return first == std::string::npos ? "" : text.substr(first, last - first + 1);
}

/// All identifier tokens of `text`, in order.
[[nodiscard]] std::vector<std::string> ident_tokens(std::string_view text) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < text.size()) {
    if ((std::isalpha(static_cast<unsigned char>(text[i])) != 0 || text[i] == '_')) {
      std::string token;
      while (i < text.size() && ident_char(text[i])) token.push_back(text[i++]);
      tokens.push_back(std::move(token));
    } else {
      // Skip whole numbers so `1e9` never yields a bogus `e9` token.
      if (std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
        while (i < text.size() && ident_char(text[i])) ++i;
      } else {
        ++i;
      }
    }
  }
  return tokens;
}

[[nodiscard]] bool mentions_any(std::string_view text, const std::set<std::string>& names) {
  if (names.empty()) return false;
  for (const std::string& token : ident_tokens(text)) {
    if (names.count(token) != 0) return true;
  }
  return false;
}

/// Splits at commas outside (), [], <>.
[[nodiscard]] std::vector<std::string> split_arguments(std::string_view text) {
  std::vector<std::string> parts;
  std::string current;
  int paren = 0;
  int square = 0;
  int angle = 0;
  for (const char c : text) {
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (c == '[') ++square;
    if (c == ']') --square;
    if (c == '<') ++angle;
    if (c == '>' && angle > 0) --angle;
    if (c == ',' && paren == 0 && square == 0 && angle == 0) {
      parts.push_back(current);
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  parts.push_back(current);
  return parts;
}

/// Bare type tokens that can end a parameter without naming it.
[[nodiscard]] bool type_keyword(const std::string& token) {
  static const std::set<std::string> kTypes = {
      "auto",     "const",   "int",      "double",  "float",    "bool",
      "char",     "void",    "unsigned", "signed",  "long",     "short",
      "std",      "size_t",  "ssize_t",  "uint8_t", "uint16_t", "uint32_t",
      "uint64_t", "int8_t",  "int16_t",  "int32_t", "int64_t",  "ptrdiff_t"};
  return kTypes.count(token) != 0;
}

/// The names the slot-index analysis treats as per-item seeds: the lambda's
/// parameter names plus its explicit by-value captures (each task holds its
/// own copy, so indexing by them is the disjoint-slot pattern). By-reference
/// captures are deliberately excluded — they are shared state.
[[nodiscard]] std::vector<std::string> seeds_of(const std::string& s,
                                               const LambdaParts& parts) {
  std::vector<std::string> seeds;
  const std::string captures =
      s.substr(parts.captures.begin, parts.captures.end - parts.captures.begin);
  for (const std::string& raw : split_arguments(captures)) {
    const std::string entry = trim(raw);
    if (entry.empty() || entry == "=" || entry == "this" || entry == "*this") continue;
    if (entry.front() == '&') continue;  // by-reference: shared, not a seed
    const std::vector<std::string> tokens = ident_tokens(entry);
    if (!tokens.empty()) seeds.push_back(tokens.front());  // `x` or `x = expr`
  }
  const std::string params =
      s.substr(parts.params.begin, parts.params.end - parts.params.begin);
  for (const std::string& raw : split_arguments(params)) {
    std::string entry = trim(raw);
    const std::size_t eq = entry.find('=');  // default argument
    if (eq != std::string::npos) entry = entry.substr(0, eq);
    const std::vector<std::string> tokens = ident_tokens(entry);
    if (tokens.empty()) continue;
    if (type_keyword(tokens.back())) continue;  // unnamed parameter
    seeds.push_back(tokens.back());
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  return seeds;
}

// ------------------------------------------------------- region discovery --

[[nodiscard]] std::vector<ParallelRegion> discover_regions(const std::string& s) {
  // Named lambdas declared in this file.
  static const std::regex kNamedLambda(R"(\b([A-Za-z_][A-Za-z0-9_]*)\s*=\s*\[)");
  std::map<std::string, LambdaParts> named;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kNamedLambda);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position()) + static_cast<std::size_t>(it->length()) - 1;
    if (const auto parts = parse_lambda(s, open)) named[(*it)[1].str()] = *parts;
  }

  static const std::regex kCall(R"(\b(?:parallel_items|parallel_for|submit)\s*\()");
  std::vector<ParallelRegion> regions;
  const auto add = [&](const LambdaParts& parts) {
    regions.push_back({parts.body, seeds_of(s, parts)});
  };
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kCall);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position()) + static_cast<std::size_t>(it->length()) - 1;
    const std::size_t close = skip_balanced(s, open, '(', ')');
    if (close == std::string::npos) continue;
    // Inline lambda arguments.
    for (std::size_t i = open + 1; i + 1 < close; ++i) {
      if (s[i] != '[') continue;
      std::size_t p = i;
      while (p > open + 1 && std::isspace(static_cast<unsigned char>(s[p - 1])) != 0) --p;
      const char prev = s[p - 1];
      if (prev != '(' && prev != ',' && prev != '&' && prev != '=') continue;
      if (const auto parts = parse_lambda(s, i)) add(*parts);
    }
    // Named-lambda arguments.
    std::string token;
    for (std::size_t i = open + 1; i <= close && i < s.size(); ++i) {
      if (i < close && ident_char(s[i])) {
        token.push_back(s[i]);
        continue;
      }
      const auto found = named.find(token);
      if (found != named.end()) add(found->second);
      token.clear();
    }
  }
  std::sort(regions.begin(), regions.end(),
            [](const ParallelRegion& a, const ParallelRegion& b) {
              return std::tie(a.body.begin, a.body.end) < std::tie(b.body.begin, b.body.end);
            });
  regions.erase(std::unique(regions.begin(), regions.end(),
                            [](const ParallelRegion& a, const ParallelRegion& b) {
                              return a.body.begin == b.body.begin && a.body.end == b.body.end;
                            }),
                regions.end());
  return regions;
}

// ------------------------------------------------- D6/D7 statement walker --

struct RegionState {
  std::set<std::string> locals;
  std::set<std::string> derived;  // seeds + locals computed from them
};

void declare(RegionState& state, const std::string& name, bool derived) {
  state.locals.insert(name);
  if (derived) state.derived.insert(name);
}

[[nodiscard]] bool known(const RegionState& state, const std::string& name) {
  return state.locals.count(name) != 0 || state.derived.count(name) != 0;
}

/// Registers the declarations of a `for (...)` header: the range-for
/// variable (derived when the range expression mentions a derived name) or
/// the init-clause variable of a classic for.
void parse_for_header(const std::string& chunk, RegionState& state) {
  const std::size_t open = chunk.find('(');
  if (open == std::string::npos) return;
  const std::size_t close = skip_balanced(chunk, open, '(', ')');
  const std::string header =
      chunk.substr(open + 1, (close == std::string::npos ? chunk.size() : close - 1) -
                                 (open + 1));
  // Range-for: a ':' that is not part of '::'.
  int depth = 0;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == '(' || header[i] == '[') ++depth;
    if (header[i] == ')' || header[i] == ']') --depth;
    if (depth != 0 || header[i] != ':') continue;
    if ((i > 0 && header[i - 1] == ':') || (i + 1 < header.size() && header[i + 1] == ':')) {
      ++i;
      continue;
    }
    const std::string decl = header.substr(0, i);
    const std::string range = header.substr(i + 1);
    const bool derived = mentions_any(range, state.derived);
    const std::size_t bracket = decl.find('[');
    if (bracket != std::string::npos) {  // structured binding
      for (const std::string& name : ident_tokens(decl.substr(bracket))) {
        declare(state, name, derived);
      }
    } else {
      const std::vector<std::string> tokens = ident_tokens(decl);
      if (!tokens.empty()) declare(state, tokens.back(), derived);
    }
    return;
  }
  // Classic for: the init clause up to the first ';'.
  const std::size_t semi = header.find(';');
  const std::string init = semi == std::string::npos ? header : header.substr(0, semi);
  const std::size_t eq = init.find('=');
  if (eq == std::string::npos) return;
  const std::vector<std::string> tokens = ident_tokens(init.substr(0, eq));
  if (tokens.empty()) return;
  declare(state, tokens.back(), mentions_any(init.substr(eq + 1), state.derived));
}

struct AssignmentOp {
  std::size_t lhs_end = 0;  // offset in the chunk where the LHS text ends
  char compound = '\0';     // '+' for `+=`, '-' for `-=`, ...; '\0' for `=`
  std::size_t rhs_begin = 0;
};

/// First top-level assignment operator of a statement chunk (comparisons
/// excluded). Operators inside parentheses or subscripts belong to inner
/// expressions and are ignored.
[[nodiscard]] std::optional<AssignmentOp> find_assignment(const std::string& chunk) {
  int paren = 0;
  int square = 0;
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    const char c = chunk[i];
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (c == '[') ++square;
    if (c == ']') --square;
    if (c != '=' || paren != 0 || square != 0) continue;
    if (i + 1 < chunk.size() && chunk[i + 1] == '=') {  // `==`
      ++i;
      continue;
    }
    const char prev = i > 0 ? chunk[i - 1] : '\0';
    if (prev == '=' || prev == '!' || prev == '<' || prev == '>') continue;
    static const std::string kCompound = "+-*/%&|^";
    if (kCompound.find(prev) != std::string::npos) {
      return AssignmentOp{i - 1, prev, i + 1};
    }
    return AssignmentOp{i, '\0', i + 1};
  }
  return std::nullopt;
}

/// Every top-level `[...]` group of the LHS, as raw text.
[[nodiscard]] std::vector<std::string> subscripts_of(const std::string& lhs) {
  std::vector<std::string> groups;
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    if (lhs[i] != '[') continue;
    const std::size_t close = skip_balanced(lhs, i, '[', ']');
    if (close == std::string::npos) break;
    groups.push_back(lhs.substr(i + 1, close - 1 - (i + 1)));
    i = close - 1;
  }
  return groups;
}

struct WalkContext {
  const FileScan* fs = nullptr;
  std::size_t body_begin = 0;  // offset of the region body in the stripped text
  RegionState state;
  std::vector<Finding>* out = nullptr;
};

void emit(WalkContext& ctx, std::size_t offset_in_body, const std::string& rule,
          std::string message) {
  ctx.out->push_back({ctx.fs->file->path, line_of(*ctx.fs, ctx.body_begin + offset_in_body),
                      rule, std::move(message)});
}

void process_chunk(const std::string& chunk, std::size_t offset, WalkContext& ctx) {
  static const std::regex kStructured(R"(^\s*(?:const\s+)?auto\s*&{0,2}\s*\[)");
  const std::string text = trim(chunk);
  if (text.empty()) return;
  const std::vector<std::string> chunk_tokens = ident_tokens(text);
  if (chunk_tokens.empty()) return;
  const std::string& head = chunk_tokens.front();
  if (head == "for") {
    parse_for_header(chunk, ctx.state);
    return;
  }
  if (head == "return" || head == "throw" || head == "break" || head == "continue") return;

  const auto op = find_assignment(chunk);
  if (op.has_value()) {
    const std::string lhs = trim(chunk.substr(0, op->lhs_end));
    const std::string rhs = chunk.substr(op->rhs_begin);
    if (lhs.empty()) return;
    std::smatch m;
    if (std::regex_search(lhs, m, kStructured)) {  // auto [a, b] = ...
      const bool derived = mentions_any(rhs, ctx.state.derived);
      for (const std::string& name : ident_tokens(lhs.substr(lhs.find('[')))) {
        declare(ctx.state, name, derived);
      }
      return;
    }
    const std::vector<std::string> lhs_tokens = ident_tokens(lhs);
    if (lhs_tokens.empty()) return;
    // A call on the left of `=` (std::tie(...), setter chains) is beyond
    // this analysis — stay silent rather than guess.
    const std::size_t first_paren = lhs.find('(');
    if (first_paren != std::string::npos && first_paren > 0 &&
        lhs.find_first_not_of(" \t*&") < first_paren &&
        lhs[lhs.find_first_not_of(" \t")] != '(') {
      return;
    }
    // Declaration heuristic: the last identifier is preceded by type-ish
    // text (`double v`, `auto& slot`, `std::vector<int> xs`).
    const std::string& declared = lhs_tokens.back();
    const std::size_t name_at = lhs.rfind(declared);
    std::string prefix = lhs.substr(0, name_at);
    while (!prefix.empty() && (std::isspace(static_cast<unsigned char>(prefix.back())) != 0 ||
                               prefix.back() == '&' || prefix.back() == '*')) {
      prefix.pop_back();
    }
    if (!prefix.empty() && (ident_char(prefix.back()) || prefix.back() == '>')) {
      declare(ctx.state, declared, mentions_any(rhs, ctx.state.derived));
      return;
    }

    // A write. Root lvalue = the first identifier (`(*out)[i]` -> out).
    const std::string& root = lhs_tokens.front();
    if (known(ctx.state, root)) return;  // per-task storage
    const std::size_t root_at = offset + chunk.find(root);
    const std::vector<std::string> subs = subscripts_of(lhs);
    if (!subs.empty()) {
      for (const std::string& sub : subs) {
        if (mentions_any(sub, ctx.state.derived)) return;  // sanctioned slot write
      }
      emit(ctx, root_at, "D6",
           "write to `" + root +
               "[...]` inside a parallel section: the slot index does not derive "
               "from the lambda's item/index parameter — disjointness cannot be "
               "verified");
      return;
    }
    if (!root.empty() && root.back() == '_') return;  // shared members are D3's domain
    const bool accumulation =
        op->compound == '+' ||
        (op->compound == '\0' &&
         std::regex_search(rhs, std::regex("^\\s*" + root + "\\b\\s*\\+")));
    if (accumulation) {
      emit(ctx, root_at, "D7",
           "accumulation into captured `" + root +
               "` inside a parallel section: fold order depends on lane "
               "interleaving — write per-item slots and fold serially (or annotate "
               "ordered-fold-ok with why the fold is order-insensitive)");
    } else {
      emit(ctx, root_at, "D6",
           "write to captured `" + root +
               "` inside a parallel section is not a disjoint-slot write: workers "
               "may only write slots indexed by their item/index parameter");
    }
    return;
  }

  // Increment/decrement statements.
  static const std::regex kIncDec(
      R"((?:(?:\+\+|--)\s*([A-Za-z_][A-Za-z0-9_]*))|(?:\b([A-Za-z_][A-Za-z0-9_]*)\s*(?:\+\+|--)))");
  bool saw_inc_dec = false;
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kIncDec);
       it != std::sregex_iterator(); ++it) {
    saw_inc_dec = true;
    const std::string name = (*it)[1].matched ? (*it)[1].str() : (*it)[2].str();
    if (known(ctx.state, name)) continue;
    if (!name.empty() && name.back() == '_') continue;  // D3's domain
    if (mentions_any(text, ctx.state.derived) && text.find('[') != std::string::npos) {
      continue;  // ++slots[k] style: a slot write with a derived index
    }
    emit(ctx, offset + chunk.find(name), "D6",
         "increment of captured `" + name +
             "` inside a parallel section is not a disjoint-slot write");
  }
  if (saw_inc_dec) return;

  // Bare declaration without initializer (`double x;`).
  if (chunk_tokens.size() >= 2 && text.find('(') == std::string::npos) {
    declare(ctx.state, chunk_tokens.back(), false);
  }
}

void walk_region(const FileScan& fs, const ParallelRegion& region,
                 std::vector<Finding>& out) {
  const std::string& s = fs.stripped;
  const std::string body =
      s.substr(region.body.begin, region.body.end - region.body.begin);
  WalkContext ctx;
  ctx.fs = &fs;
  ctx.body_begin = region.body.begin;
  ctx.out = &out;
  for (const std::string& seed : region.seeds) ctx.state.derived.insert(seed);
  // Nested lambda parameters are per-invocation storage of their own scope.
  static const std::regex kNestedLambda(R"(\[[^\[\]]*\]\s*\(([^()]*)\))");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kNestedLambda);
       it != std::sregex_iterator(); ++it) {
    for (const std::string& raw : split_arguments((*it)[1].str())) {
      const std::vector<std::string> tokens = ident_tokens(raw);
      if (!tokens.empty() && !type_keyword(tokens.back())) {
        ctx.state.locals.insert(tokens.back());
      }
    }
  }

  int paren = 0;
  std::size_t chunk_start = 0;
  for (std::size_t i = 0; i <= body.size(); ++i) {
    const char c = i < body.size() ? body[i] : ';';
    if (c == '(') ++paren;
    if (c == ')' && paren > 0) --paren;
    const bool delim =
        i == body.size() || ((c == ';' || c == '{' || c == '}') && paren == 0);
    if (!delim) continue;
    process_chunk(body.substr(chunk_start, i - chunk_start), chunk_start, ctx);
    chunk_start = i + 1;
  }
}

[[nodiscard]] std::vector<Finding> slot_findings(const FileScan& fs) {
  std::vector<Finding> raw;
  for (const ParallelRegion& region : parallel_regions_of(fs)) {
    walk_region(fs, region, raw);
  }
  std::sort(raw.begin(), raw.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) < std::tie(b.line, b.rule, b.message);
  });
  raw.erase(std::unique(raw.begin(), raw.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.line == b.line && a.rule == b.rule &&
                                 a.message == b.message;
                        }),
            raw.end());
  return raw;
}

}  // namespace

std::vector<ParallelRegion> parallel_regions_of(const FileScan& fs) {
  return discover_regions(fs.stripped);
}

void rule_d3(const FileScan& fs, std::vector<Finding>& findings) {
  static const std::regex kIdent(R"([A-Za-z_][A-Za-z0-9_]*)");
  static const std::array<std::pair<std::regex, const char*>, 4> kMutations = {{
      {std::regex(R"((?:\+\+|--)\s*([A-Za-z_][A-Za-z0-9_]*_)\b)"),
       "mutation of shared member `%` inside a parallel section"},
      {std::regex(R"(\b([A-Za-z_][A-Za-z0-9_]*_)\s*(?:\+\+|--))"),
       "mutation of shared member `%` inside a parallel section"},
      {std::regex(R"(\b([A-Za-z_][A-Za-z0-9_]*_)\s*(?:[-+*/|&^]=|=(?!=)))"),
       "assignment to shared member `%` inside a parallel section (workers may "
       "only write disjoint slots, e.g. `%[k] = ...`)"},
      {std::regex(
           R"(\b([A-Za-z_][A-Za-z0-9_]*_)\s*\.\s*(?:push_back|pop_back|emplace_back|emplace|insert|insert_or_assign|erase|clear|resize|assign|reserve)\s*\()"),
       "container mutation of shared member `%` inside a parallel section"},
  }};
  const std::string& s = fs.stripped;
  std::vector<Finding> raw;
  for (const ParallelRegion& region : parallel_regions_of(fs)) {
    const std::string body =
        s.substr(region.body.begin, region.body.end - region.body.begin);
    // RNG draws: any identifier naming an Rng (the repo convention always
    // spells it out: rng, failure_rng_, Rng, ...).
    for (auto it = std::sregex_iterator(body.begin(), body.end(), kIdent);
         it != std::sregex_iterator(); ++it) {
      std::string word = it->str();
      std::transform(word.begin(), word.end(), word.begin(),
                     [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
      if (word.find("rng") == std::string::npos) continue;
      raw.push_back(
          {fs.file->path,
           line_of(fs, region.body.begin + static_cast<std::size_t>(it->position())), "D3",
           "RNG use `" + it->str() +
               "` inside a parallel section: every draw belongs to the "
               "coordinating thread (pre-draw into per-item slots)"});
    }
    for (const auto& [re, message] : kMutations) {
      for (auto it = std::sregex_iterator(body.begin(), body.end(), re);
           it != std::sregex_iterator(); ++it) {
        std::string msg = message;
        std::size_t pos = 0;
        while ((pos = msg.find('%', pos)) != std::string::npos) {
          msg.replace(pos, 1, (*it)[1].str());
          pos += (*it)[1].str().size();
        }
        raw.push_back(
            {fs.file->path,
             line_of(fs, region.body.begin + static_cast<std::size_t>(it->position(1))),
             "D3", std::move(msg)});
      }
    }
  }
  // Nested/duplicated regions (a named lambda used twice) may double-report.
  std::sort(raw.begin(), raw.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.message) < std::tie(b.line, b.message);
  });
  raw.erase(std::unique(raw.begin(), raw.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.line == b.line && a.message == b.message;
                        }),
            raw.end());
  findings.insert(findings.end(), raw.begin(), raw.end());
}

void rule_d6(const FileScan& fs, std::vector<Finding>& findings) {
  for (Finding& finding : slot_findings(fs)) {
    if (finding.rule == "D6") findings.push_back(std::move(finding));
  }
}

void rule_d7(const FileScan& fs, const std::set<std::string>& unordered_names,
             std::vector<Finding>& findings) {
  for (Finding& finding : slot_findings(fs)) {
    if (finding.rule == "D7") findings.push_back(std::move(finding));
  }
  // Accumulation while iterating an unordered container: the fold happens in
  // bucket order even on one thread.
  static const std::regex kRangeFor(
      R"(\bfor\s*\([^();]*[^();:]:\s*(?:[A-Za-z_][A-Za-z0-9_]*\s*(?:\.|->)\s*)*([A-Za-z_][A-Za-z0-9_]*)\s*\))");
  static const std::regex kAccumulate(
      R"(\b([A-Za-z_][A-Za-z0-9_]*)\s*(?:\+=|=\s*\1\s*\+))");
  const std::string& s = fs.stripped;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kRangeFor);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (unordered_names.find(name) == unordered_names.end()) continue;
    std::size_t i = skip_ws(s, static_cast<std::size_t>(it->position() + it->length()));
    std::size_t body_begin = 0;
    std::size_t body_end = 0;
    if (i < s.size() && s[i] == '{') {
      const std::size_t close = fs.bracket_match[i];
      if (close == std::string::npos) continue;
      body_begin = i + 1;
      body_end = close;
    } else {
      body_begin = i;
      body_end = s.find(';', i);
      if (body_end == std::string::npos) continue;
    }
    const std::string body = s.substr(body_begin, body_end - body_begin);
    for (auto acc = std::sregex_iterator(body.begin(), body.end(), kAccumulate);
         acc != std::sregex_iterator(); ++acc) {
      findings.push_back(
          {fs.file->path,
           line_of(fs, body_begin + static_cast<std::size_t>(acc->position(1))), "D7",
           "accumulation into `" + (*acc)[1].str() + "` while iterating unordered "
               "container `" + name + "` folds in bucket order — snapshot into a "
               "sorted sequence first, or annotate ordered-fold-ok with why the "
               "fold is order-insensitive"});
    }
  }
}

void rule_d8(const FileScan& fs, std::vector<Finding>& findings) {
  static const std::regex kRawLock(R"((?:\.|->)\s*((?:un)?lock)\s*\()");
  const std::string& s = fs.stripped;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kRawLock);
       it != std::sregex_iterator(); ++it) {
    findings.push_back(
        {fs.file->path, line_of(fs, static_cast<std::size_t>(it->position(1))), "D8",
         "raw `" + (*it)[1].str() +
             "()` call: hold mutexes through RAII guards (std::lock_guard / "
             "std::scoped_lock) so no early exit can leak the lock"});
  }
}

}  // namespace carbonedge::lint
