// Lexing layer of carbonedge_lint: one pass over the raw bytes produces the
// "stripped" view every rule scans (comments and literal contents blanked,
// length and line structure preserved exactly), the comment list the
// annotation parser consumes, the `#include` directives the architecture
// pass resolves, and a token-tree bracket-match table so region analysis
// (parallel lambdas, loop bodies, enum bodies) is scoped structurally
// instead of line-by-line.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace carbonedge::lint {

[[nodiscard]] bool ident_char(char c) noexcept;

/// One comment's text and the 1-based line it ends on (where a trailing
/// annotation takes effect).
struct Comment {
  std::string text;
  std::size_t end_line = 0;
};

struct LexResult {
  std::string stripped;
  std::vector<Comment> comments;
};

/// Blanks comment bodies and string/char/raw-string literal contents
/// (delimiters kept, newlines kept) so offsets map 1:1 onto the source.
[[nodiscard]] LexResult lex(std::string_view src);

/// Parses a `lint: <token>(<reason>)` annotation out of one comment, if
/// present. Malformed annotations are appended with `malformed` set.
void parse_annotation_text(const Comment& comment, std::vector<Annotation>& out);

/// One `#include` directive, parsed from the raw source (the lexer blanks
/// quoted paths, so the stripped view cannot carry them).
struct IncludeDirective {
  std::size_t line = 0;  // 1-based
  std::string target;    // the path between the delimiters
  bool quoted = false;   // "..." (our tree) vs <...> (system)
};

/// Per-file scan state shared by every rule pass.
struct FileScan {
  const SourceFile* file = nullptr;
  std::string stripped;
  std::vector<Annotation> annotations;
  std::vector<std::size_t> line_starts;   // byte offset of each 1-based line
  std::vector<IncludeDirective> includes;
  std::vector<std::size_t> bracket_match;  // token tree: match[i] = partner offset
};

[[nodiscard]] std::size_t line_of(const FileScan& fs, std::size_t offset);

[[nodiscard]] FileScan scan_file(const SourceFile& file);

/// Token-tree construction: for every (), [], {} bracket in the stripped
/// text, match[i] holds the offset of its partner (npos for unmatched
/// brackets and every non-bracket byte). Angle brackets are excluded — they
/// are ambiguous without full parsing and handled locally by skip_angles.
[[nodiscard]] std::vector<std::size_t> match_brackets(const std::string& stripped);

/// Walks a balanced <...> template argument list starting at the '<'.
/// Returns the offset one past the matching '>', or npos when unbalanced.
[[nodiscard]] std::size_t skip_angles(const std::string& s, std::size_t open);

/// Returns the offset one past the bracket matching `open_ch` at `open`.
[[nodiscard]] std::size_t skip_balanced(const std::string& s, std::size_t open,
                                        char open_ch, char close_ch);

[[nodiscard]] std::size_t skip_ws(const std::string& s, std::size_t i);

}  // namespace carbonedge::lint
