#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <optional>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

namespace carbonedge::lint {

namespace {

[[nodiscard]] bool ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

struct Comment {
  std::string text;
  std::size_t end_line = 0;  // 1-based line the comment ends on
};

struct LexResult {
  std::string stripped;
  std::vector<Comment> comments;
};

/// One pass over the raw bytes: comments are collected (for annotation
/// extraction) and blanked, string/char/raw-string literal *contents* are
/// blanked (delimiters kept), everything else is copied through. Line
/// structure is preserved exactly so offsets map 1:1 onto line numbers.
LexResult lex(std::string_view src) {
  LexResult out;
  out.stripped.reserve(src.size());
  const std::size_t n = src.size();
  std::size_t i = 0;
  std::size_t line = 1;
  const auto put = [&](char c) { out.stripped.push_back(c); };
  const auto blank = [&](char c) {
    if (c == '\n') {
      put('\n');
      ++line;
    } else {
      put(' ');
    }
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      put('\n');
      ++line;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {  // line comment
      put('/');
      put('/');
      i += 2;
      std::string text;
      while (i < n && src[i] != '\n') {
        text.push_back(src[i]);
        put(' ');
        ++i;
      }
      out.comments.push_back({std::move(text), line});
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {  // block comment
      put('/');
      put('*');
      i += 2;
      std::string text;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        text.push_back(src[i]);
        blank(src[i]);
        ++i;
      }
      if (i + 1 < n) {
        put('*');
        put('/');
        i += 2;
      } else if (i < n) {  // unterminated: swallow the final char
        text.push_back(src[i]);
        blank(src[i]);
        ++i;
      }
      out.comments.push_back({std::move(text), line});
      continue;
    }
    if (c == '"') {
      // Raw string? Look back over an optional encoding prefix for an R
      // that is not the tail of a longer identifier.
      bool raw = false;
      if (i >= 1 && src[i - 1] == 'R') {
        std::size_t start = i - 1;  // candidate prefix start
        if (start >= 1 && (src[start - 1] == 'u' || src[start - 1] == 'U' ||
                           src[start - 1] == 'L')) {
          --start;
        } else if (start >= 2 && src[start - 1] == '8' && src[start - 2] == 'u') {
          start -= 2;
        }
        raw = start == 0 || !ident_char(src[start - 1]);
      }
      if (raw) {
        // Validate the delimiter: raw-string syntax is R"delim( ... )delim".
        std::size_t d = i + 1;
        while (d < n && d - (i + 1) <= 16 && src[d] != '(' && src[d] != ')' &&
               src[d] != '\\' && src[d] != '"' && src[d] != '\n' && src[d] != ' ') {
          ++d;
        }
        if (d < n && src[d] == '(') {
          const std::string terminator =
              ")" + std::string(src.substr(i + 1, d - (i + 1))) + "\"";
          put('"');
          ++i;
          while (i < d + 1) {  // delimiter + '(' kept verbatim
            put(src[i]);
            ++i;
          }
          const std::size_t end = src.find(terminator, i);
          const std::size_t stop = end == std::string_view::npos ? n : end;
          while (i < stop) {
            blank(src[i]);
            ++i;
          }
          for (std::size_t k = 0; k < terminator.size() && i < n; ++k, ++i) put(src[i]);
          continue;
        }
        // No valid delimiter: fall through and treat it as an ordinary
        // string (it was something like MACRO_ENDING_IN_R "...").
      }
      put('"');
      ++i;
      while (i < n && src[i] != '"' && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] != '\n') {
          put(' ');
          put(' ');
          i += 2;
          continue;
        }
        put(' ');
        ++i;
      }
      if (i < n && src[i] == '"') {
        put('"');
        ++i;
      }
      continue;
    }
    if (c == '\'') {
      // A quote glued to an identifier/number is a digit separator
      // (1'000'000), not a character literal.
      if (i >= 1 && ident_char(src[i - 1])) {
        put('\'');
        ++i;
        continue;
      }
      put('\'');
      ++i;
      while (i < n && src[i] != '\'' && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] != '\n') {
          put(' ');
          put(' ');
          i += 2;
          continue;
        }
        put(' ');
        ++i;
      }
      if (i < n && src[i] == '\'') {
        put('\'');
        ++i;
      }
      continue;
    }
    put(c);
    ++i;
  }
  return out;
}

/// Suppression token -> rule id. Everything the engine accepts is here; an
/// unknown token in an annotation is itself a LINT error.
const std::map<std::string, std::string>& token_rules() {
  static const std::map<std::string, std::string> kMap = {
      {"nondeterminism-ok", "D1"}, {"unordered-iteration-ok", "D2"},
      {"parallel-state-ok", "D3"}, {"float-ok", "D4"},
      {"getenv-ok", "D5"},         {"header-ok", "H1"},
  };
  return kMap;
}

[[nodiscard]] bool known_rule(std::string_view rule) {
  for (const auto& [token, id] : token_rules()) {
    (void)token;
    if (id == rule) return true;
  }
  return false;
}

void parse_annotation_text(const Comment& comment, std::vector<Annotation>& out) {
  const std::size_t pos = comment.text.find("lint:");
  if (pos == std::string::npos) return;
  Annotation ann;
  ann.line = comment.end_line;
  std::size_t i = pos + 5;
  const std::string& text = comment.text;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
  while (i < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[i])) != 0 || text[i] == '-')) {
    ann.token.push_back(text[i]);
    ++i;
  }
  if (ann.token.empty()) {
    ann.malformed = true;
    ann.error = "annotation is missing a suppression token (want `lint: <token>(<reason>)`)";
    out.push_back(std::move(ann));
    return;
  }
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) ++i;
  if (i >= text.size() || text[i] != '(') {
    ann.malformed = true;
    ann.error = "suppression `" + ann.token + "` has no (<reason>) — every escape hatch " +
                "must say why";
    out.push_back(std::move(ann));
    return;
  }
  ++i;
  std::size_t depth = 1;
  while (i < text.size() && depth > 0) {
    if (text[i] == '(') ++depth;
    if (text[i] == ')') {
      --depth;
      if (depth == 0) break;
    }
    ann.reason.push_back(text[i]);
    ++i;
  }
  if (depth != 0) {
    ann.malformed = true;
    ann.error = "suppression `" + ann.token + "` has an unterminated (<reason>)";
    out.push_back(std::move(ann));
    return;
  }
  const auto first = ann.reason.find_first_not_of(" \t");
  const auto last = ann.reason.find_last_not_of(" \t");
  ann.reason = first == std::string::npos ? "" : ann.reason.substr(first, last - first + 1);
  if (ann.reason.empty()) {
    ann.malformed = true;
    ann.error = "suppression `" + ann.token + "` has an empty reason";
    out.push_back(std::move(ann));
    return;
  }
  if (token_rules().find(ann.token) == token_rules().end()) {
    ann.malformed = true;
    ann.error = "unknown suppression token `" + ann.token + "`";
  }
  out.push_back(std::move(ann));
}

/// Per-file scan state shared by the rule passes.
struct FileScan {
  const SourceFile* file = nullptr;
  std::string stripped;
  std::vector<Annotation> annotations;
  std::vector<std::size_t> line_starts;  // byte offset of each 1-based line
};

[[nodiscard]] std::size_t line_of(const FileScan& fs, std::size_t offset) {
  const auto it =
      std::upper_bound(fs.line_starts.begin(), fs.line_starts.end(), offset);
  return static_cast<std::size_t>(it - fs.line_starts.begin());
}

FileScan scan_file(const SourceFile& file) {
  FileScan fs;
  fs.file = &file;
  LexResult lexed = lex(file.content);
  fs.stripped = std::move(lexed.stripped);
  for (const Comment& comment : lexed.comments) {
    parse_annotation_text(comment, fs.annotations);
  }
  fs.line_starts.push_back(0);
  for (std::size_t i = 0; i < fs.stripped.size(); ++i) {
    if (fs.stripped[i] == '\n') fs.line_starts.push_back(i + 1);
  }
  return fs;
}

/// Walks a balanced <...> template argument list starting at the '<'.
/// Returns the offset one past the matching '>', or npos when unbalanced.
[[nodiscard]] std::size_t skip_angles(const std::string& s, std::size_t open) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>') {
      if (depth == 0) return std::string::npos;
      if (--depth == 0) return i + 1;
    }
    if (s[i] == ';') return std::string::npos;  // statement ended: not a template
  }
  return std::string::npos;
}

[[nodiscard]] std::size_t skip_balanced(const std::string& s, std::size_t open,
                                        char open_ch, char close_ch) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == open_ch) ++depth;
    if (s[i] == close_ch && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

[[nodiscard]] std::size_t skip_ws(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) ++i;
  return i;
}

// ------------------------------------------------------------------- D2 --

/// Records every variable declared as an unordered associative container.
/// Members declared in one file (a header) are iterated in another (the
/// matching .cpp), so the name set is collected tree-wide before any rule
/// runs.
void collect_unordered_names(const FileScan& fs, std::set<std::string>& names) {
  static const std::regex kDecl(R"(\bunordered_(?:map|set|multimap|multiset)\s*<)");
  const std::string& s = fs.stripped;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kDecl);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position()) + it->length() - 1;
    std::size_t i = skip_angles(s, open);
    if (i == std::string::npos) continue;
    i = skip_ws(s, i);
    while (i < s.size() && (s[i] == '&' || s[i] == '*')) i = skip_ws(s, i + 1);
    std::string name;
    while (i < s.size() && ident_char(s[i])) name.push_back(s[i++]);
    if (name.empty()) continue;
    i = skip_ws(s, i);
    if (i < s.size() && s[i] == '(') continue;  // a function returning the container
    names.insert(std::move(name));
  }
}

void rule_d2(const FileScan& fs, const std::set<std::string>& unordered_names,
             std::vector<Finding>& findings) {
  // The range expression may qualify the container (`cache.entries_`,
  // `self->hosted_`): the trailing identifier is the name that matters.
  static const std::regex kRangeFor(
      R"(\bfor\s*\([^();]*[^();:]:\s*(?:[A-Za-z_][A-Za-z0-9_]*\s*(?:\.|->)\s*)*([A-Za-z_][A-Za-z0-9_]*)\s*\))");
  static const std::regex kBegin(R"(\b([A-Za-z_][A-Za-z0-9_]*)\s*\.\s*c?begin\s*\()");
  const std::string& s = fs.stripped;
  for (const std::regex* re : {&kRangeFor, &kBegin}) {
    for (auto it = std::sregex_iterator(s.begin(), s.end(), *re);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (unordered_names.find(name) == unordered_names.end()) continue;
      findings.push_back(
          {fs.file->path, line_of(fs, static_cast<std::size_t>(it->position(1))), "D2",
           "iteration over unordered container `" + name +
               "`: accumulate/emit via a serial snapshot, or annotate why bucket "
               "order cannot leak into output"});
    }
  }
}

// ------------------------------------------------------------------- D3 --

struct Region {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Parses a lambda literal whose '[' is at `open`; returns the body extent.
[[nodiscard]] std::optional<Region> lambda_body(const std::string& s, std::size_t open) {
  std::size_t i = skip_balanced(s, open, '[', ']');
  if (i == std::string::npos) return std::nullopt;
  i = skip_ws(s, i);
  if (i < s.size() && s[i] == '(') {
    i = skip_balanced(s, i, '(', ')');
    if (i == std::string::npos) return std::nullopt;
  }
  // Skip specifiers (mutable, noexcept, -> Type) up to the body.
  while (i < s.size() && s[i] != '{') {
    if (s[i] == ';' || s[i] == ',' || s[i] == ')') return std::nullopt;  // not a lambda
    ++i;
  }
  if (i >= s.size()) return std::nullopt;
  const std::size_t close = skip_balanced(s, i, '{', '}');
  if (close == std::string::npos) return std::nullopt;
  return Region{i + 1, close - 1};
}

/// Finds every code region that executes on worker lanes: bodies of lambda
/// literals passed (directly, or via a named `auto body = [...]` variable)
/// to parallel_items / parallel_for / ThreadPool::submit.
[[nodiscard]] std::vector<Region> parallel_regions(const std::string& s) {
  // Named lambdas declared in this file.
  static const std::regex kNamedLambda(R"(\b([A-Za-z_][A-Za-z0-9_]*)\s*=\s*\[)");
  std::map<std::string, Region> named;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kNamedLambda);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position()) + static_cast<std::size_t>(it->length()) - 1;
    if (const auto body = lambda_body(s, open)) named[(*it)[1].str()] = *body;
  }

  static const std::regex kCall(R"(\b(?:parallel_items|parallel_for|submit)\s*\()");
  std::vector<Region> regions;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kCall);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position()) + static_cast<std::size_t>(it->length()) - 1;
    const std::size_t close = skip_balanced(s, open, '(', ')');
    if (close == std::string::npos) continue;
    // Inline lambda arguments.
    for (std::size_t i = open + 1; i + 1 < close; ++i) {
      if (s[i] != '[') continue;
      std::size_t p = i;
      while (p > open + 1 && std::isspace(static_cast<unsigned char>(s[p - 1])) != 0) --p;
      const char prev = s[p - 1];
      if (prev != '(' && prev != ',' && prev != '&' && prev != '=') continue;
      if (const auto body = lambda_body(s, i)) regions.push_back(*body);
    }
    // Named-lambda arguments.
    std::string token;
    for (std::size_t i = open + 1; i <= close && i < s.size(); ++i) {
      if (i < close && ident_char(s[i])) {
        token.push_back(s[i]);
        continue;
      }
      const auto found = named.find(token);
      if (found != named.end()) regions.push_back(found->second);
      token.clear();
    }
  }
  std::sort(regions.begin(), regions.end(),
            [](const Region& a, const Region& b) { return a.begin < b.begin; });
  regions.erase(std::unique(regions.begin(), regions.end(),
                            [](const Region& a, const Region& b) {
                              return a.begin == b.begin && a.end == b.end;
                            }),
                regions.end());
  return regions;
}

void rule_d3(const FileScan& fs, std::vector<Finding>& findings) {
  static const std::regex kIdent(R"([A-Za-z_][A-Za-z0-9_]*)");
  static const std::array<std::pair<std::regex, const char*>, 4> kMutations = {{
      {std::regex(R"((?:\+\+|--)\s*([A-Za-z_][A-Za-z0-9_]*_)\b)"),
       "mutation of shared member `%` inside a parallel section"},
      {std::regex(R"(\b([A-Za-z_][A-Za-z0-9_]*_)\s*(?:\+\+|--))"),
       "mutation of shared member `%` inside a parallel section"},
      {std::regex(R"(\b([A-Za-z_][A-Za-z0-9_]*_)\s*(?:[-+*/|&^]=|=(?!=)))"),
       "assignment to shared member `%` inside a parallel section (workers may "
       "only write disjoint slots, e.g. `%[k] = ...`)"},
      {std::regex(
           R"(\b([A-Za-z_][A-Za-z0-9_]*_)\s*\.\s*(?:push_back|pop_back|emplace_back|emplace|insert|insert_or_assign|erase|clear|resize|assign|reserve)\s*\()"),
       "container mutation of shared member `%` inside a parallel section"},
  }};
  const std::string& s = fs.stripped;
  std::vector<Finding> raw;
  for (const Region& region : parallel_regions(s)) {
    const std::string body = s.substr(region.begin, region.end - region.begin);
    // RNG draws: any identifier naming an Rng (the repo convention always
    // spells it out: rng, failure_rng_, Rng, ...).
    for (auto it = std::sregex_iterator(body.begin(), body.end(), kIdent);
         it != std::sregex_iterator(); ++it) {
      std::string word = it->str();
      std::transform(word.begin(), word.end(), word.begin(),
                     [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
      if (word.find("rng") == std::string::npos) continue;
      raw.push_back({fs.file->path,
                     line_of(fs, region.begin + static_cast<std::size_t>(it->position())),
                     "D3",
                     "RNG use `" + it->str() +
                         "` inside a parallel section: every draw belongs to the "
                         "coordinating thread (pre-draw into per-item slots)"});
    }
    for (const auto& [re, message] : kMutations) {
      for (auto it = std::sregex_iterator(body.begin(), body.end(), re);
           it != std::sregex_iterator(); ++it) {
        std::string msg = message;
        std::size_t pos = 0;
        while ((pos = msg.find('%', pos)) != std::string::npos) {
          msg.replace(pos, 1, (*it)[1].str());
          pos += (*it)[1].str().size();
        }
        raw.push_back({fs.file->path,
                       line_of(fs, region.begin + static_cast<std::size_t>(it->position(1))),
                       "D3", std::move(msg)});
      }
    }
  }
  // Nested/duplicated regions (a named lambda used twice) may double-report.
  std::sort(raw.begin(), raw.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.message) < std::tie(b.line, b.message);
  });
  raw.erase(std::unique(raw.begin(), raw.end(),
                        [](const Finding& a, const Finding& b) {
                          return a.line == b.line && a.message == b.message;
                        }),
            raw.end());
  findings.insert(findings.end(), raw.begin(), raw.end());
}

// ------------------------------------------------------------- D1/D4/D5 --

void rule_d1(const FileScan& fs, std::vector<Finding>& findings) {
  static const std::array<std::pair<std::regex, const char*>, 5> kBanned = {{
      {std::regex(R"(\bstd\s*::\s*rand\b|\bsrand\s*\()"),
       "std::rand/srand: implementation-defined global RNG; use a config-seeded "
       "util::Rng"},
      {std::regex(R"(\brandom_device\b)"),
       "std::random_device draws host entropy; every seed must come from the "
       "config so runs replay"},
      {std::regex(R"(\b(?:[A-Za-z_][A-Za-z0-9_]*_clock|clock)\s*::\s*now\s*\()"),
       "clock read: wall/steady time must never influence simulation output"},
      {std::regex(R"(\btime\s*\(\s*(?:nullptr|NULL|0)\s*\))"),
       "time(): wall time must never influence simulation output"},
      {std::regex(R"(\bthis_thread\s*::\s*get_id\b)"),
       "thread identity: behavior must not depend on which lane runs an item"},
  }};
  const std::string& s = fs.stripped;
  for (const auto& [re, message] : kBanned) {
    for (auto it = std::sregex_iterator(s.begin(), s.end(), re);
         it != std::sregex_iterator(); ++it) {
      findings.push_back({fs.file->path,
                          line_of(fs, static_cast<std::size_t>(it->position())), "D1",
                          message});
    }
  }
  // Pointer-keyed ordered containers: iteration order is allocation order.
  static const std::regex kOrdered(R"(\bstd\s*::\s*(?:multi)?(?:map|set)\s*<)");
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kOrdered);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position()) + static_cast<std::size_t>(it->length()) - 1;
    std::size_t depth = 0;
    bool pointer_key = false;
    for (std::size_t i = open; i < s.size(); ++i) {
      if (s[i] == '<') ++depth;
      if (s[i] == '>' && --depth == 0) break;
      if (s[i] == ';') break;
      if (s[i] == ',' && depth == 1) break;  // end of the key argument
      if (s[i] == '*') pointer_key = true;
    }
    if (pointer_key) {
      findings.push_back(
          {fs.file->path, line_of(fs, static_cast<std::size_t>(it->position())), "D1",
           "ordered container keyed on a pointer: iteration order is allocation "
           "order — key on a stable id instead"});
    }
  }
}

void rule_d4(const FileScan& fs, std::vector<Finding>& findings) {
  const std::string& path = fs.file->path;
  const bool accounting_path =
      path.rfind("src/sim/", 0) == 0 || path.rfind("src/core/", 0) == 0;
  if (!accounting_path) return;
  static const std::regex kFloat(R"(\bfloat\b)");
  const std::string& s = fs.stripped;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kFloat);
       it != std::sregex_iterator(); ++it) {
    findings.push_back({path, line_of(fs, static_cast<std::size_t>(it->position())), "D4",
                        "`float` in an accounting/telemetry path: the store codecs "
                        "and the replay oracle are a bit-exact double contract"});
  }
}

void rule_d5(const FileScan& fs, std::vector<Finding>& findings) {
  static const std::regex kGetenv(R"(\bgetenv\b)");
  const std::string& s = fs.stripped;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kGetenv);
       it != std::sregex_iterator(); ++it) {
    findings.push_back({fs.file->path,
                        line_of(fs, static_cast<std::size_t>(it->position())), "D5",
                        "raw getenv: environment reads go through util::env so every "
                        "input the process consumes is auditable in one place"});
  }
}

void rule_h1(const FileScan& fs, std::vector<Finding>& findings) {
  const std::string& path = fs.file->path;
  const bool header = path.size() >= 4 && (path.rfind(".hpp") == path.size() - 4 ||
                                           path.rfind(".h") == path.size() - 2);
  if (!header) return;
  static const std::regex kPragmaOnce(R"(#\s*pragma\s+once\b)");
  if (!std::regex_search(fs.stripped, kPragmaOnce)) {
    findings.push_back({path, 1, "H1", "header is missing `#pragma once`"});
  }
  static const std::regex kUsingNamespace(R"(\busing\s+namespace\b)");
  const std::string& s = fs.stripped;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kUsingNamespace);
       it != std::sregex_iterator(); ++it) {
    findings.push_back({path, line_of(fs, static_cast<std::size_t>(it->position())), "H1",
                        "`using namespace` in a header leaks into every includer"});
  }
}

}  // namespace

std::string format(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": " << finding.rule << ": "
      << finding.message;
  return out.str();
}

std::string strip_comments_and_literals(std::string_view source) {
  return lex(source).stripped;
}

std::vector<Annotation> extract_annotations(std::string_view source) {
  std::vector<Annotation> annotations;
  for (const Comment& comment : lex(source).comments) {
    parse_annotation_text(comment, annotations);
  }
  return annotations;
}

std::vector<AllowlistEntry> parse_allowlist(std::string_view content, std::string_view label,
                                            std::vector<Finding>& errors) {
  std::vector<AllowlistEntry> entries;
  std::istringstream stream{std::string(content)};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(stream, line)) {
    ++lineno;
    std::istringstream fields(line);
    AllowlistEntry entry;
    entry.line = lineno;
    if (!(fields >> entry.rule)) continue;  // blank line
    if (entry.rule.front() == '#') continue;
    fields >> entry.path;
    std::getline(fields, entry.reason);
    const auto first = entry.reason.find_first_not_of(" \t");
    entry.reason = first == std::string::npos ? "" : entry.reason.substr(first);
    if (!known_rule(entry.rule) || entry.path.empty() || entry.reason.empty()) {
      errors.push_back({std::string(label), lineno, "LINT",
                        "malformed allowlist entry (want `<rule-id> <path> <reason>` "
                        "with a known rule id): `" + line + "`"});
      continue;
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<Finding> run_lint(const std::vector<SourceFile>& files,
                              std::vector<AllowlistEntry>& allowlist) {
  std::vector<FileScan> scans;
  scans.reserve(files.size());
  std::set<std::string> unordered_names;
  for (const SourceFile& file : files) {
    scans.push_back(scan_file(file));
    collect_unordered_names(scans.back(), unordered_names);
  }

  std::vector<Finding> findings;
  for (FileScan& fs : scans) {
    std::vector<Finding> raw;
    rule_d1(fs, raw);
    rule_d2(fs, unordered_names, raw);
    rule_d3(fs, raw);
    rule_d4(fs, raw);
    rule_d5(fs, raw);
    rule_h1(fs, raw);

    for (Finding& finding : raw) {
      bool suppressed = false;
      for (Annotation& ann : fs.annotations) {
        if (ann.malformed) continue;
        const auto rule = token_rules().find(ann.token);
        if (rule == token_rules().end() || rule->second != finding.rule) continue;
        if (finding.line == ann.line || finding.line == ann.line + 1) {
          ann.used = true;
          suppressed = true;
        }
      }
      if (!suppressed) {
        for (AllowlistEntry& entry : allowlist) {
          if (entry.rule == finding.rule && entry.path == finding.file) {
            entry.used = true;
            suppressed = true;
          }
        }
      }
      if (!suppressed) findings.push_back(std::move(finding));
    }

    // The escape hatches are themselves linted: malformed annotations and
    // suppressions that matched nothing are errors, so stale exemptions can
    // never accumulate.
    for (const Annotation& ann : fs.annotations) {
      if (ann.malformed) {
        findings.push_back({fs.file->path, ann.line, "LINT", ann.error});
      } else if (!ann.used) {
        findings.push_back({fs.file->path, ann.line, "LINT",
                            "unused suppression `" + ann.token +
                                "`: no " + token_rules().at(ann.token) +
                                " finding on this or the next line — remove it"});
      }
    }
  }
  for (const AllowlistEntry& entry : allowlist) {
    if (!entry.used) {
      findings.push_back({"allowlist", entry.line, "LINT",
                          "unused allowlist entry `" + entry.rule + " " + entry.path +
                              "`: no such finding — remove it"});
    }
  }

  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  return findings;
}

}  // namespace carbonedge::lint
