// Engine of carbonedge_lint: the rule registry, the suppression and
// allowlist machinery, and run_lint_full() tying the lexer and the three
// rule families (determinism, dataflow, architecture) together. The rule
// implementations live in rules_*.cpp; output rendering in report.cpp.
#include "lint.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "lexer.hpp"
#include "rules_architecture.hpp"
#include "rules_dataflow.hpp"
#include "rules_determinism.hpp"

namespace carbonedge::lint {

const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"D1", "nondeterminism-ok",
       "banned nondeterminism primitive (rand, entropy, clocks, thread id, "
       "pointer-keyed ordered container)"},
      {"D2", "unordered-iteration-ok",
       "iteration over an unordered container: bucket order leaks into output"},
      {"D3", "parallel-state-ok",
       "RNG draw or shared-member mutation inside a parallel section"},
      {"D4", "float-ok", "`float` in an accounting/telemetry path (double contract)"},
      {"D5", "getenv-ok", "raw getenv outside the util::env shim"},
      {"D6", "slot-write-ok",
       "write in a parallel section that is not a verified disjoint-slot write"},
      {"D7", "ordered-fold-ok",
       "order-sensitive accumulation (parallel section or unordered iteration)"},
      {"D8", "raw-lock-ok", "raw lock()/unlock() call outside an RAII guard"},
      {"H1", "header-ok", "header hygiene: `#pragma once`, no `using namespace`"},
      {"A1", "layer-dep-ok",
       "cross-module include not allowed by the layer DAG (layers.txt)"},
      {"A2", "include-cycle-ok", "include cycle among the tree's own files"},
      {"A3", "test-include-ok", "src/ including from bench/, tests/, or examples/"},
      {"A4", "unused-include-ok",
       "unused include: the header contributes no referenced name"},
      {"A5", "transitive-include-ok",
       "symbol used directly but its header is only included transitively"},
  };
  return kRules;
}

const std::map<std::string, std::string>& token_rules() {
  static const std::map<std::string, std::string> kMap = [] {
    std::map<std::string, std::string> map;
    for (const RuleInfo& rule : rules()) map[rule.token] = rule.id;
    return map;
  }();
  return kMap;
}

namespace {

[[nodiscard]] bool known_rule(std::string_view rule) {
  for (const RuleInfo& info : rules()) {
    if (info.id == rule) return true;
  }
  return false;
}

}  // namespace

std::string format(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": " << finding.rule << ": "
      << finding.message;
  return out.str();
}

std::string strip_comments_and_literals(std::string_view source) {
  return lex(source).stripped;
}

std::vector<Annotation> extract_annotations(std::string_view source) {
  std::vector<Annotation> annotations;
  for (const Comment& comment : lex(source).comments) {
    parse_annotation_text(comment, annotations);
  }
  return annotations;
}

std::vector<AllowlistEntry> parse_allowlist(std::string_view content, std::string_view label,
                                            std::vector<Finding>& errors) {
  std::vector<AllowlistEntry> entries;
  std::istringstream stream{std::string(content)};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(stream, line)) {
    ++lineno;
    std::istringstream fields(line);
    AllowlistEntry entry;
    entry.line = lineno;
    if (!(fields >> entry.rule)) continue;  // blank line
    if (entry.rule.front() == '#') continue;
    fields >> entry.path;
    std::getline(fields, entry.reason);
    const auto first = entry.reason.find_first_not_of(" \t");
    entry.reason = first == std::string::npos ? "" : entry.reason.substr(first);
    if (!known_rule(entry.rule) || entry.path.empty() || entry.reason.empty()) {
      errors.push_back({std::string(label), lineno, "LINT",
                        "malformed allowlist entry (want `<rule-id> <path> <reason>` "
                        "with a known rule id): `" + line + "`"});
      continue;
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

LintOutput run_lint_full(const std::vector<SourceFile>& files,
                         std::vector<AllowlistEntry>& allowlist,
                         const LintConfig& config) {
  LintOutput out;

  std::set<std::string> enabled_set(config.rules.begin(), config.rules.end());
  const auto enabled = [&](const std::string& rule) {
    return rule == "LINT" || enabled_set.empty() || enabled_set.count(rule) != 0;
  };

  const LayerGraph layers =
      parse_layers(config.layers_text, config.layers_label, out.findings);

  std::vector<FileScan> scans;
  scans.reserve(files.size());
  std::set<std::string> unordered_names;
  for (const SourceFile& file : files) {
    scans.push_back(scan_file(file));
    collect_unordered_names(scans.back(), unordered_names);
  }

  // Raw findings from every pass, then the architecture pass (tree-wide).
  std::vector<Finding> raw;
  for (const FileScan& fs : scans) {
    rule_d1(fs, raw);
    rule_d2(fs, unordered_names, raw);
    rule_d3(fs, raw);
    rule_d4(fs, raw);
    rule_d5(fs, raw);
    rule_d6(fs, raw);
    rule_d7(fs, unordered_names, raw);
    rule_d8(fs, raw);
    rule_h1(fs, raw);
  }
  ArchOutput arch = run_architecture(scans, layers);
  out.module_graph_dot = std::move(arch.graph_dot);

  // Pair each A4/A5 finding with the mechanical edit it produced (they are
  // appended in lockstep) so only edits for *surviving* findings are kept.
  std::vector<std::pair<Finding, std::size_t>> arch_findings;  // finding, edit or npos
  {
    std::size_t next_edit = 0;
    for (Finding& finding : arch.findings) {
      std::size_t edit = std::string::npos;
      if (finding.rule == "A4" || finding.rule == "A5") edit = next_edit++;
      arch_findings.emplace_back(std::move(finding), edit);
    }
  }

  std::map<std::string, FileScan*> scan_of;
  for (FileScan& fs : scans) scan_of[fs.file->path] = &fs;

  const auto suppressed = [&](const Finding& finding) {
    const auto found = scan_of.find(finding.file);
    if (found != scan_of.end()) {
      for (Annotation& ann : found->second->annotations) {
        if (ann.malformed) continue;
        const auto rule = token_rules().find(ann.token);
        if (rule == token_rules().end() || rule->second != finding.rule) continue;
        if (finding.line == ann.line || finding.line == ann.line + 1) {
          ann.used = true;
          return true;
        }
      }
    }
    for (AllowlistEntry& entry : allowlist) {
      if (entry.rule == finding.rule && entry.path == finding.file) {
        entry.used = true;
        return true;
      }
    }
    return false;
  };

  for (Finding& finding : raw) {
    if (!enabled(finding.rule)) continue;
    if (!suppressed(finding)) out.findings.push_back(std::move(finding));
  }
  for (auto& [finding, edit] : arch_findings) {
    if (!enabled(finding.rule)) continue;
    if (suppressed(finding)) continue;
    if (edit != std::string::npos) out.edits.push_back(std::move(arch.edits[edit]));
    out.findings.push_back(std::move(finding));
  }

  // The escape hatches are themselves linted: malformed annotations and
  // suppressions that matched nothing are errors, so stale exemptions can
  // never accumulate. Suppressions for rules the caller filtered out are
  // left alone — a partial run must not condemn the other rules' hatches.
  for (const FileScan& fs : scans) {
    for (const Annotation& ann : fs.annotations) {
      if (ann.malformed) {
        out.findings.push_back({fs.file->path, ann.line, "LINT", ann.error});
      } else if (!ann.used && enabled(token_rules().at(ann.token))) {
        out.findings.push_back({fs.file->path, ann.line, "LINT",
                                "unused suppression `" + ann.token +
                                    "`: no " + token_rules().at(ann.token) +
                                    " finding on this or the next line — remove it"});
      }
    }
  }
  for (const AllowlistEntry& entry : allowlist) {
    if (!entry.used && enabled(entry.rule)) {
      out.findings.push_back({"allowlist", entry.line, "LINT",
                              "unused allowlist entry `" + entry.rule + " " + entry.path +
                                  "`: no such finding — remove it"});
    }
  }

  std::sort(out.findings.begin(), out.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  std::sort(out.edits.begin(), out.edits.end(),
            [](const IncludeEdit& a, const IncludeEdit& b) {
              return std::tie(a.file, a.line, a.rule, a.text) <
                     std::tie(b.file, b.line, b.rule, b.text);
            });
  return out;
}

std::vector<Finding> run_lint(const std::vector<SourceFile>& files,
                              std::vector<AllowlistEntry>& allowlist) {
  return run_lint_full(files, allowlist, {}).findings;
}

}  // namespace carbonedge::lint
