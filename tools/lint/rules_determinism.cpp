#include "rules_determinism.hpp"

#include <array>
#include <regex>
#include <utility>

namespace carbonedge::lint {

void collect_unordered_names(const FileScan& fs, std::set<std::string>& names) {
  static const std::regex kDecl(R"(\bunordered_(?:map|set|multimap|multiset)\s*<)");
  const std::string& s = fs.stripped;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kDecl);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open = static_cast<std::size_t>(it->position()) + it->length() - 1;
    std::size_t i = skip_angles(s, open);
    if (i == std::string::npos) continue;
    i = skip_ws(s, i);
    while (i < s.size() && (s[i] == '&' || s[i] == '*')) i = skip_ws(s, i + 1);
    std::string name;
    while (i < s.size() && ident_char(s[i])) name.push_back(s[i++]);
    if (name.empty()) continue;
    i = skip_ws(s, i);
    if (i < s.size() && s[i] == '(') continue;  // a function returning the container
    names.insert(std::move(name));
  }
}

void rule_d1(const FileScan& fs, std::vector<Finding>& findings) {
  static const std::array<std::pair<std::regex, const char*>, 5> kBanned = {{
      {std::regex(R"(\bstd\s*::\s*rand\b|\bsrand\s*\()"),
       "std::rand/srand: implementation-defined global RNG; use a config-seeded "
       "util::Rng"},
      {std::regex(R"(\brandom_device\b)"),
       "std::random_device draws host entropy; every seed must come from the "
       "config so runs replay"},
      {std::regex(R"(\b(?:[A-Za-z_][A-Za-z0-9_]*_clock|clock)\s*::\s*now\s*\()"),
       "clock read: wall/steady time must never influence simulation output; "
       "time telemetry goes through obs::now_ns (src/obs/clock.hpp), the one "
       "sanctioned and fake-injectable monotonic source"},
      {std::regex(R"(\btime\s*\(\s*(?:nullptr|NULL|0)\s*\))"),
       "time(): wall time must never influence simulation output"},
      {std::regex(R"(\bthis_thread\s*::\s*get_id\b)"),
       "thread identity: behavior must not depend on which lane runs an item"},
  }};
  const std::string& s = fs.stripped;
  for (const auto& [re, message] : kBanned) {
    for (auto it = std::sregex_iterator(s.begin(), s.end(), re);
         it != std::sregex_iterator(); ++it) {
      findings.push_back({fs.file->path,
                          line_of(fs, static_cast<std::size_t>(it->position())), "D1",
                          message});
    }
  }
  // Pointer-keyed ordered containers: iteration order is allocation order.
  static const std::regex kOrdered(R"(\bstd\s*::\s*(?:multi)?(?:map|set)\s*<)");
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kOrdered);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open =
        static_cast<std::size_t>(it->position()) + static_cast<std::size_t>(it->length()) - 1;
    std::size_t depth = 0;
    bool pointer_key = false;
    for (std::size_t i = open; i < s.size(); ++i) {
      if (s[i] == '<') ++depth;
      if (s[i] == '>' && --depth == 0) break;
      if (s[i] == ';') break;
      if (s[i] == ',' && depth == 1) break;  // end of the key argument
      if (s[i] == '*') pointer_key = true;
    }
    if (pointer_key) {
      findings.push_back(
          {fs.file->path, line_of(fs, static_cast<std::size_t>(it->position())), "D1",
           "ordered container keyed on a pointer: iteration order is allocation "
           "order — key on a stable id instead"});
    }
  }
}

void rule_d2(const FileScan& fs, const std::set<std::string>& unordered_names,
             std::vector<Finding>& findings) {
  // The range expression may qualify the container (`cache.entries_`,
  // `self->hosted_`): the trailing identifier is the name that matters.
  static const std::regex kRangeFor(
      R"(\bfor\s*\([^();]*[^();:]:\s*(?:[A-Za-z_][A-Za-z0-9_]*\s*(?:\.|->)\s*)*([A-Za-z_][A-Za-z0-9_]*)\s*\))");
  static const std::regex kBegin(R"(\b([A-Za-z_][A-Za-z0-9_]*)\s*\.\s*c?begin\s*\()");
  const std::string& s = fs.stripped;
  for (const std::regex* re : {&kRangeFor, &kBegin}) {
    for (auto it = std::sregex_iterator(s.begin(), s.end(), *re);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      if (unordered_names.find(name) == unordered_names.end()) continue;
      findings.push_back(
          {fs.file->path, line_of(fs, static_cast<std::size_t>(it->position(1))), "D2",
           "iteration over unordered container `" + name +
               "`: accumulate/emit via a serial snapshot, or annotate why bucket "
               "order cannot leak into output"});
    }
  }
}

void rule_d4(const FileScan& fs, std::vector<Finding>& findings) {
  const std::string& path = fs.file->path;
  const bool accounting_path =
      path.rfind("src/sim/", 0) == 0 || path.rfind("src/core/", 0) == 0;
  if (!accounting_path) return;
  static const std::regex kFloat(R"(\bfloat\b)");
  const std::string& s = fs.stripped;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kFloat);
       it != std::sregex_iterator(); ++it) {
    findings.push_back({path, line_of(fs, static_cast<std::size_t>(it->position())), "D4",
                        "`float` in an accounting/telemetry path: the store codecs "
                        "and the replay oracle are a bit-exact double contract"});
  }
}

void rule_d5(const FileScan& fs, std::vector<Finding>& findings) {
  static const std::regex kGetenv(R"(\bgetenv\b)");
  const std::string& s = fs.stripped;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kGetenv);
       it != std::sregex_iterator(); ++it) {
    findings.push_back({fs.file->path,
                        line_of(fs, static_cast<std::size_t>(it->position())), "D5",
                        "raw getenv: environment reads go through util::env so every "
                        "input the process consumes is auditable in one place"});
  }
}

void rule_h1(const FileScan& fs, std::vector<Finding>& findings) {
  const std::string& path = fs.file->path;
  const bool header = path.size() >= 4 && (path.rfind(".hpp") == path.size() - 4 ||
                                           path.rfind(".h") == path.size() - 2);
  if (!header) return;
  static const std::regex kPragmaOnce(R"(#\s*pragma\s+once\b)");
  if (!std::regex_search(fs.stripped, kPragmaOnce)) {
    findings.push_back({path, 1, "H1", "header is missing `#pragma once`"});
  }
  static const std::regex kUsingNamespace(R"(\busing\s+namespace\b)");
  const std::string& s = fs.stripped;
  for (auto it = std::sregex_iterator(s.begin(), s.end(), kUsingNamespace);
       it != std::sregex_iterator(); ++it) {
    findings.push_back({path, line_of(fs, static_cast<std::size_t>(it->position())), "H1",
                        "`using namespace` in a header leaks into every includer"});
  }
}

}  // namespace carbonedge::lint
