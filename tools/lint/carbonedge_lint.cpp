// carbonedge_lint CLI: walk src/, examples/, bench/, and tools/ under
// --root, run the determinism + dataflow rules and the tree-wide
// architecture pass (see lint.hpp), print `file:line: rule-id: message` per
// finding, and exit nonzero on any finding not covered by the baseline. The
// checked-in allowlist is loaded from <root>/tools/lint/allowlist.txt and
// the layer DAG from <root>/tools/lint/layers.txt unless overridden.
//
//   carbonedge_lint [--root DIR] [--allowlist FILE|-] [--layers FILE|-]
//                   [--rule=ID[,ID...]] [--format=text|json|sarif]
//                   [--baseline=FILE] [--write-baseline=FILE]
//                   [--fix-includes] [--dump-graph=dot] [--list-rules]
//                   [dir...]
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"
#include "report.hpp"

namespace {

namespace fs = std::filesystem;
using carbonedge::lint::AllowlistEntry;
using carbonedge::lint::Finding;
using carbonedge::lint::LintConfig;
using carbonedge::lint::LintOutput;
using carbonedge::lint::RuleInfo;
using carbonedge::lint::SourceFile;

[[nodiscard]] bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".hh" || ext == ".h";
}

[[nodiscard]] std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int usage() {
  std::cerr
      << "usage: carbonedge_lint [--root DIR] [--allowlist FILE|-] [--layers FILE|-]\n"
      << "                       [--rule=ID[,ID...]] [--format=text|json|sarif]\n"
      << "                       [--baseline=FILE] [--write-baseline=FILE]\n"
      << "                       [--fix-includes] [--dump-graph=dot] [--list-rules]\n"
      << "                       [dir...]\n"
      << "  Lints DIR-relative dirs (default: src examples bench tools) and exits\n"
      << "  nonzero on any finding not in the baseline. `--allowlist -` disables\n"
      << "  the allowlist; `--layers -` disables the layer DAG (A1).\n"
      << "  --fix-includes prints a unified diff for A4/A5 findings instead of\n"
      << "  gating; --dump-graph=dot prints the observed module graph.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string allowlist_arg;
  std::string layers_arg;
  std::string baseline_arg;
  std::string write_baseline_arg;
  std::string format_arg = "text";
  std::string rule_arg;
  bool fix_includes = false;
  bool dump_graph = false;
  bool list_rules = false;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_arg = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_arg = argv[++i];
    } else if (arg.rfind("--rule=", 0) == 0) {
      rule_arg = value_of("--rule=");
    } else if (arg.rfind("--format=", 0) == 0) {
      format_arg = value_of("--format=");
      if (format_arg != "text" && format_arg != "json" && format_arg != "sarif") {
        return usage();
      }
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_arg = value_of("--baseline=");
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_arg = value_of("--write-baseline=");
    } else if (arg == "--fix-includes") {
      fix_includes = true;
    } else if (arg == "--dump-graph=dot") {
      dump_graph = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      dirs.push_back(arg);
    }
  }
  if (list_rules) {
    for (const RuleInfo& rule : carbonedge::lint::rules()) {
      std::cout << rule.id << "  " << rule.token << "\n    " << rule.summary << "\n";
    }
    std::cout << "LINT  (not suppressible)\n    malformed or unused suppression, "
                 "allowlist, or layers declaration\n";
    return 0;
  }
  if (dirs.empty()) dirs = {"src", "examples", "bench", "tools"};

  std::vector<SourceFile> files;
  for (const std::string& dir : dirs) {
    const fs::path base = root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
      std::cerr << "carbonedge_lint: not a directory: " << base.string() << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      const std::string label = fs::relative(entry.path(), root).generic_string();
      files.push_back({label, read_file(entry.path())});
    }
  }
  // Deterministic diagnostics regardless of directory enumeration order.
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.path < b.path; });

  std::vector<Finding> findings;
  std::vector<AllowlistEntry> allowlist;
  fs::path allowlist_path = root / "tools" / "lint" / "allowlist.txt";
  if (!allowlist_arg.empty()) allowlist_path = allowlist_arg;
  if (allowlist_arg != "-") {
    std::error_code ec;
    if (fs::is_regular_file(allowlist_path, ec)) {
      allowlist = carbonedge::lint::parse_allowlist(
          read_file(allowlist_path), allowlist_path.generic_string(), findings);
    } else if (!allowlist_arg.empty()) {
      std::cerr << "carbonedge_lint: allowlist not found: " << allowlist_path.string()
                << "\n";
      return 2;
    }
  }

  LintConfig config;
  fs::path layers_path = root / "tools" / "lint" / "layers.txt";
  if (!layers_arg.empty()) layers_path = layers_arg;
  if (layers_arg != "-") {
    std::error_code ec;
    if (fs::is_regular_file(layers_path, ec)) {
      config.layers_text = read_file(layers_path);
      config.layers_label = fs::relative(layers_path, root).generic_string();
    } else if (!layers_arg.empty()) {
      std::cerr << "carbonedge_lint: layers file not found: " << layers_path.string()
                << "\n";
      return 2;
    }
  }
  if (!rule_arg.empty()) {
    std::istringstream list(rule_arg);
    std::string id;
    while (std::getline(list, id, ',')) {
      if (!id.empty()) config.rules.push_back(id);
    }
  }

  LintOutput output = carbonedge::lint::run_lint_full(files, allowlist, config);
  findings.insert(findings.end(), output.findings.begin(), output.findings.end());

  if (dump_graph) {
    std::cout << output.module_graph_dot;
    return 0;
  }
  if (fix_includes) {
    std::cout << carbonedge::lint::to_unified_diff(output.edits, files);
    return output.edits.empty() ? 0 : 1;
  }
  if (!write_baseline_arg.empty()) {
    std::ofstream out(write_baseline_arg, std::ios::binary);
    out << carbonedge::lint::write_baseline(findings);
    std::cerr << "carbonedge_lint: wrote " << findings.size() << " baseline entries to "
              << write_baseline_arg << "\n";
    return 0;
  }

  // The baseline downgrades known findings: still printed, but only NEW
  // findings gate the exit status.
  std::vector<Finding> gating = findings;
  if (!baseline_arg.empty()) {
    std::error_code ec;
    if (!fs::is_regular_file(baseline_arg, ec)) {
      std::cerr << "carbonedge_lint: baseline not found: " << baseline_arg << "\n";
      return 2;
    }
    gating = carbonedge::lint::filter_baseline(
        findings, carbonedge::lint::parse_baseline(read_file(baseline_arg)));
  }

  if (format_arg == "json") {
    std::cout << carbonedge::lint::to_json(gating);
    return gating.empty() ? 0 : 1;
  }
  if (format_arg == "sarif") {
    std::cout << carbonedge::lint::to_sarif(gating);
    return gating.empty() ? 0 : 1;
  }
  for (const Finding& finding : findings) {
    std::cout << carbonedge::lint::format(finding) << "\n";
  }
  if (!gating.empty()) {
    std::cout << "carbonedge_lint: " << gating.size() << " finding(s) across "
              << files.size() << " files\n";
    return 1;
  }
  if (findings.size() != gating.size()) {
    std::cout << "carbonedge_lint: " << files.size() << " files, "
              << (findings.size() - gating.size()) << " baselined finding(s), 0 new\n";
    return 0;
  }
  std::cout << "carbonedge_lint: " << files.size() << " files clean ("
            << allowlist.size() << " allowlist entries, all used)\n";
  return 0;
}
