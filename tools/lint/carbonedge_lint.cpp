// carbonedge_lint CLI: walk src/, examples/, and bench/ under --root, run
// the determinism rules (see lint.hpp), print `file:line: rule-id: message`
// per finding, and exit nonzero on any finding. The checked-in allowlist is
// loaded from <root>/tools/lint/allowlist.txt unless overridden.
//
//   carbonedge_lint [--root DIR] [--allowlist FILE|-] [dir...]
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

namespace fs = std::filesystem;
using carbonedge::lint::AllowlistEntry;
using carbonedge::lint::Finding;
using carbonedge::lint::SourceFile;

[[nodiscard]] bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".hpp" || ext == ".hh" || ext == ".h";
}

[[nodiscard]] std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int usage() {
  std::cerr << "usage: carbonedge_lint [--root DIR] [--allowlist FILE|-] [dir...]\n"
            << "  Lints DIR-relative dirs (default: src examples bench) and exits\n"
            << "  nonzero on any finding. `--allowlist -` disables the allowlist.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string allowlist_arg;
  std::vector<std::string> dirs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--allowlist" && i + 1 < argc) {
      allowlist_arg = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      dirs.push_back(arg);
    }
  }
  if (dirs.empty()) dirs = {"src", "examples", "bench"};

  std::vector<SourceFile> files;
  for (const std::string& dir : dirs) {
    const fs::path base = root / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) {
      std::cerr << "carbonedge_lint: not a directory: " << base.string() << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable(entry.path())) continue;
      const std::string label = fs::relative(entry.path(), root).generic_string();
      files.push_back({label, read_file(entry.path())});
    }
  }
  // Deterministic diagnostics regardless of directory enumeration order.
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.path < b.path; });

  std::vector<Finding> findings;
  std::vector<AllowlistEntry> allowlist;
  fs::path allowlist_path = root / "tools" / "lint" / "allowlist.txt";
  if (!allowlist_arg.empty()) allowlist_path = allowlist_arg;
  if (allowlist_arg != "-") {
    std::error_code ec;
    if (fs::is_regular_file(allowlist_path, ec)) {
      allowlist = carbonedge::lint::parse_allowlist(
          read_file(allowlist_path), allowlist_path.generic_string(), findings);
    } else if (!allowlist_arg.empty()) {
      std::cerr << "carbonedge_lint: allowlist not found: " << allowlist_path.string()
                << "\n";
      return 2;
    }
  }

  std::vector<Finding> lint = carbonedge::lint::run_lint(files, allowlist);
  findings.insert(findings.end(), lint.begin(), lint.end());
  for (const Finding& finding : findings) {
    std::cout << carbonedge::lint::format(finding) << "\n";
  }
  if (!findings.empty()) {
    std::cout << "carbonedge_lint: " << findings.size() << " finding(s) across "
              << files.size() << " files\n";
    return 1;
  }
  std::cout << "carbonedge_lint: " << files.size() << " files clean ("
            << allowlist.size() << " allowlist entries, all used)\n";
  return 0;
}
