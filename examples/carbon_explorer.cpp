// Carbon explorer: the paper's Section 3 mesoscale analysis as a CLI tool.
// For a region it prints each zone's generation mix, yearly intensity
// statistics, the pairwise latency matrix, and the best "shift partner"
// (largest intensity drop within the latency budget) per zone.
//
//   $ ./carbon_explorer                 # all four mesoscale regions
//   $ ./carbon_explorer florida 10      # one region, 10 ms one-way budget
#include <iostream>
#include <string>

#include <algorithm>
#include <cctype>

#include "carbon/caltime.hpp"
#include "carbon/service.hpp"
#include "carbon/trace.hpp"
#include "geo/coord.hpp"
#include "geo/latency.hpp"
#include "geo/region.hpp"
#include "geo/site.hpp"
#include "util/table.hpp"

using namespace carbonedge;

namespace {

void explore(const geo::Region& region, double budget_one_way_ms) {
  carbon::CarbonIntensityService service;
  service.add_region(region);
  const auto cities = region.resolve();
  const geo::LatencyModel latency;
  const geo::BoundingBox box = region.bounds();

  std::cout << "\n### " << region.name << " (" << util::format_fixed(box.width_km(), 0)
            << "km x " << util::format_fixed(box.height_km(), 0) << "km)\n";

  util::Table zones({"Zone", "low-carbon share", "mean g/kWh", "min", "max", "daily swing"});
  for (const geo::City& city : cities) {
    const carbon::CarbonTrace& trace = service.trace(city.name);
    // Mean intra-day swing.
    std::array<double, 24> shape{};
    for (carbon::HourIndex h = 0; h < trace.hours(); ++h) {
      shape[carbon::hour_of_day(h)] += trace.at(h) / 365.0;
    }
    const double swing = *std::max_element(shape.begin(), shape.end()) -
                         *std::min_element(shape.begin(), shape.end());
    zones.add_row({city.name,
                   util::format_percent(trace.average_mix().low_carbon_share(), 0),
                   util::format_fixed(trace.yearly_mean(), 0),
                   util::format_fixed(trace.yearly_min(), 0),
                   util::format_fixed(trace.yearly_max(), 0), util::format_fixed(swing, 0)});
  }
  zones.print(std::cout);

  util::Table partners({"Zone", "best partner", "distance (km)", "one-way (ms)",
                        "intensity drop"});
  partners.set_title("Best shift partner within " +
                     util::format_fixed(budget_one_way_ms, 0) + " ms one-way");
  for (const geo::City& from : cities) {
    const double own = service.trace(from.name).yearly_mean();
    const geo::City* best = nullptr;
    double best_drop = 0.0;
    for (const geo::City& to : cities) {
      if (to.id == from.id) continue;
      if (latency.one_way_ms(from, to) > budget_one_way_ms) continue;
      const double drop = (own - service.trace(to.name).yearly_mean()) / std::max(own, 1e-9);
      if (drop > best_drop) {
        best_drop = drop;
        best = &to;
      }
    }
    if (best != nullptr) {
      partners.add_row({from.name, best->name,
                        util::format_fixed(geo::haversine_km(from.location, best->location), 0),
                        util::format_fixed(latency.one_way_ms(from, *best), 2),
                        util::format_percent(best_drop)});
    } else {
      partners.add_row({from.name, "(none within budget)", "-", "-", "-"});
    }
  }
  partners.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const double budget = argc > 2 ? std::stod(argv[2]) : 15.0;
  if (argc > 1) {
    const std::string name = argv[1];
    for (const geo::Region& region : geo::mesoscale_regions()) {
      std::string key = region.name;
      for (char& c : key) c = c == ' ' ? '_' : static_cast<char>(std::tolower(c));
      if (key == name) {
        explore(region, budget);
        return 0;
      }
    }
    std::cerr << "unknown region '" << name << "' (try: florida west_us italy central_eu)\n";
    return 1;
  }
  for (const geo::Region& region : geo::mesoscale_regions()) explore(region, budget);
  return 0;
}
