// Regional testbed scenario (paper Section 6.2): emulate the 11-server
// mesoscale deployment — five edge data centers, one long-lived application
// offloaded from each city's end devices — for a 24-hour day, and compare
// all four policies on carbon, latency, and energy.
//
//   $ ./regional_testbed            # Florida (default)
//   $ ./regional_testbed central_eu # Central Europe
//   $ ./regional_testbed west_us
//   $ ./regional_testbed italy
#include <iostream>
#include <string>

#include "carbon/service.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/region.hpp"
#include "sim/datacenter.hpp"
#include "sim/device.hpp"
#include "util/table.hpp"

using namespace carbonedge;

namespace {

geo::Region pick_region(const std::string& name) {
  if (name == "central_eu") return geo::central_eu_region();
  if (name == "west_us") return geo::west_us_region();
  if (name == "italy") return geo::italy_region();
  return geo::florida_region();
}

}  // namespace

int main(int argc, char** argv) {
  const geo::Region region = pick_region(argc > 1 ? argv[1] : "florida");
  std::cout << "Regional testbed: " << region.name << " (24h, CPU Sci application)\n";

  carbon::CarbonIntensityService carbon_service;
  carbon_service.add_region(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kXeonCpu), carbon_service);

  core::SimulationConfig config;
  config.epochs = 24;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 1;
  config.workload.model_weights = {0.0, 0.0, 0.0, 1.0};
  config.workload.latency_limit_rtt_ms = 25.0;

  const std::vector<core::PolicyConfig> policies = {
      core::PolicyConfig::latency_aware(), core::PolicyConfig::energy_aware(),
      core::PolicyConfig::intensity_aware(), core::PolicyConfig::carbon_edge()};
  const auto results = core::run_policies(simulation, config, policies);

  util::Table table({"Policy", "Carbon (g)", "Energy (Wh)", "Mean RTT (ms)",
                     "Mean response (ms)", "Saving vs Latency-aware"});
  table.set_title(region.name + " 24h totals");
  for (std::size_t p = 0; p < policies.size(); ++p) {
    table.add_row({core::describe(policies[p]),
                   util::format_fixed(results[p].telemetry.total_carbon_g(), 1),
                   util::format_fixed(results[p].telemetry.total_energy_wh(), 1),
                   util::format_fixed(results[p].telemetry.mean_rtt_ms(), 2),
                   util::format_fixed(results[p].telemetry.mean_response_ms(), 1),
                   util::format_percent(core::carbon_saving(results[0], results[p]))});
  }
  table.print(std::cout);

  // Where did CarbonEdge put the load?
  const auto apps = results[3].telemetry.apps_by_site(0, 24);
  const auto cities = simulation.pristine_cluster().cities();
  std::cout << "CarbonEdge hosting (mean apps/site): ";
  for (std::size_t s = 0; s < cities.size(); ++s) {
    std::cout << cities[s].name << "=" << util::format_fixed(apps[s], 1) << "  ";
  }
  std::cout << "\n";
  return 0;
}
