// CDN green routing scenario (paper Section 6.3): a continental CDN hosts
// edge AI services across many metro PoPs; CarbonEdge shifts load to
// low-carbon zones within the latency budget. Runs a one-month trace-driven
// simulation and reports savings, latency overhead, and the load-weighted
// intensity distribution.
//
//   $ ./cdn_green_routing            # Europe (default), 20 ms RTT budget
//   $ ./cdn_green_routing us 30      # US, 30 ms RTT budget
#include <iostream>
#include <string>

#include "carbon/service.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/coord.hpp"
#include "geo/region.hpp"
#include "sim/datacenter.hpp"
#include "sim/device.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main(int argc, char** argv) {
  const std::string where = argc > 1 ? argv[1] : "eu";
  const double rtt_budget = argc > 2 ? std::stod(argv[2]) : 20.0;
  const geo::Continent continent =
      where == "us" ? geo::Continent::kNorthAmerica : geo::Continent::kEurope;

  const geo::Region region = geo::cdn_region(continent, 35);
  std::cout << "CDN green routing: " << region.name << ", " << region.cities.size()
            << " PoPs, RTT budget " << rtt_budget << " ms, one month\n";

  carbon::CarbonIntensityService carbon_service;
  carbon_service.add_region(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), carbon_service);

  core::SimulationConfig config;
  config.epochs = 31 * 24 / 3;
  config.epoch_hours = 3.0;
  config.workload.arrivals_per_site = 0.25;
  config.workload.mean_lifetime_epochs = 16.0;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.latency_limit_rtt_ms = rtt_budget;

  const auto results =
      core::run_policies(simulation, config,
                         {core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()});

  util::Table table({"Policy", "Carbon (kg)", "Mean RTT (ms)", "Placed", "Rejected"});
  for (std::size_t p = 0; p < 2; ++p) {
    table.add_row({p == 0 ? "Latency-aware" : "CarbonEdge",
                   util::format_fixed(results[p].telemetry.total_carbon_kg(), 2),
                   util::format_fixed(results[p].telemetry.mean_rtt_ms(), 2),
                   std::to_string(results[p].apps_placed),
                   std::to_string(results[p].apps_rejected)});
  }
  table.print(std::cout);
  std::cout << "Carbon saving: "
            << util::format_percent(core::carbon_saving(results[0], results[1]))
            << ", RTT increase: "
            << util::format_fixed(core::latency_increase_ms(results[0], results[1]), 2)
            << " ms\n";

  // Load-weighted intensity CDF (paper Figure 11c).
  const util::EmpiricalCdf base(results[0].telemetry.load_intensity_sample());
  const util::EmpiricalCdf green(results[1].telemetry.load_intensity_sample());
  util::Table cdf({"Intensity (g/kWh)", "Latency-aware CDF", "CarbonEdge CDF"});
  cdf.set_title("Where the load ran");
  for (double x = 100.0; x <= 700.0; x += 100.0) {
    cdf.add_row(util::format_fixed(x, 0), {base.at(x), green.at(x)}, 2);
  }
  cdf.print(std::cout);
  return 0;
}
