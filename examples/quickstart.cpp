// Quickstart: place a batch of edge AI applications carbon-aware across the
// Central-EU mesoscale region, and compare against the latency-first
// baseline.
//
//   $ ./quickstart
//
// Walks through the full public API surface: regions -> carbon service ->
// cluster -> placement service -> decisions.
#include <iostream>

#include "carbon/service.hpp"
#include "core/placement_service.hpp"
#include "core/policy.hpp"
#include "core/problem.hpp"
#include "geo/latency.hpp"
#include "geo/region.hpp"
#include "sim/app_model.hpp"
#include "sim/datacenter.hpp"
#include "sim/device.hpp"
#include "sim/workload.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  // 1. Pick a mesoscale region (Bern, Munich, Lyon, Graz, Milan) and
  //    synthesize a year of hourly carbon-intensity traces for its zones.
  const geo::Region region = geo::central_eu_region();
  carbon::CarbonIntensityService carbon_service;
  carbon_service.add_region(region);

  // 2. Build an edge cluster: one NVIDIA A2 server per city.
  sim::EdgeCluster cluster = sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2);
  const geo::LatencyMatrix latency(geo::LatencyModel{}, cluster.cities());

  // 3. A batch of arriving applications: one ResNet50 inference service per
  //    city, 5 req/s each, 20 ms round-trip SLO.
  std::vector<sim::Application> apps;
  for (std::size_t site = 0; site < cluster.size(); ++site) {
    sim::Application app;
    app.id = site;
    app.model = sim::ModelType::kResNet50;
    app.origin_site = site;
    app.rps = 5.0;
    app.latency_limit_rtt_ms = 20.0;
    apps.push_back(app);
  }

  // 4. Run the CarbonEdge placement (Algorithm 1) at noon on January 1st.
  core::PlacementInput input;
  input.cluster = &cluster;
  input.latency = &latency;
  input.carbon = &carbon_service;
  input.now = 12;
  input.forecast_horizon_hours = 24;

  core::PlacementService service(core::PolicyConfig::carbon_edge());
  const core::PlacementResult result = service.place(input, apps);

  // 5. Inspect the decisions.
  const auto cities = cluster.cities();
  util::Table table({"App origin", "Placed at", "Zone intensity", "RTT (ms)", "g CO2/epoch"});
  table.set_title("CarbonEdge placement decisions");
  for (const core::PlacementDecision& d : result.decisions) {
    table.add_row({cities[apps[d.app].origin_site].name, cities[d.site].name,
                   util::format_fixed(carbon_service.mean_forecast(cities[d.site].name, 12, 24), 0),
                   util::format_fixed(d.rtt_ms, 2), util::format_fixed(d.carbon_g, 3)});
  }
  table.print(std::cout);
  std::cout << "Solved in " << util::format_fixed(result.solve_time_ms, 2) << " ms; "
            << result.rejected.size() << " rejected.\n"
            << "All apps land in the greenest feasible zone - that is the paper's point:\n"
            << "meaningful carbon-intensity differences exist at mesoscale distances.\n";
  return 0;
}
