// carbonedge_cli — command-line front end over the library.
//
//   carbonedge_cli zones                        list built-in zones + mixes
//   carbonedge_cli analyze <region>             Section 3 region summary
//   carbonedge_cli radius <km>                  Figure 5 radius study (US+EU)
//   carbonedge_cli simulate <region> <policy> <epochs>
//                                               run a regional simulation
//   carbonedge_cli sweep <region> <epochs> [--single]
//                                               deterministic scenario sweep
//                                               (the CI determinism gate's
//                                               probe: its table must be
//                                               byte-identical for every
//                                               CARBONEDGE_THREADS)
//   carbonedge_cli export-traces <region> <file.csv>
//                                               dump synthetic traces as CSV
//   carbonedge_cli serve <region> --replay|--stdin [--epochs=N]
//       [--window-epochs=N] [--policy=<p>] [--queue-capacity=N]
//       [--ooo=drop|clamp] [--ema-alpha=A] [--ema-reopt=<sig>:<fire>:<rearm>]
//       [--export=<file|->]
//                                               streaming serving mode: ingest
//                                               an event stream (trace replay
//                                               or CSV on stdin), aggregate
//                                               windowed telemetry, and — when
//                                               --ema-reopt is given — fire
//                                               event-driven re-optimization
//                                               on EMA threshold crossings.
//                                               The summary prints no timings
//                                               (the determinism gate diffs a
//                                               serve replay too).
//   carbonedge_cli store warm [region...]       pre-synthesize traces into the
//                                               persistent artifact store
//   carbonedge_cli store ls | verify | gc       inspect / checksum / clean it
//   carbonedge_cli catalog build <sites.tsv>    compile a GeoNames-style site
//                                               dump into the store; prints the
//                                               content key
//   carbonedge_cli catalog info <key>           summarize a compiled catalog
//   carbonedge_cli catalog nearest <key> <lat> <lon>
//   carbonedge_cli catalog radius <key> <lat> <lon> <km>
//                                               spatial-index queries (output
//                                               is byte-identical to the
//                                               brute-force oracle; the
//                                               determinism gate diffs radius)
//   carbonedge_cli catalog sweep <key> <epochs> [--max-sites=<n>] [--band=<ms>]
//                                               single-cell CarbonEdge sweep
//                                               over a compiled catalog, with
//                                               an optional sparse latency band
//   carbonedge_cli metrics                      enumerate the obs registry
//                                               (name, kind, view, value)
//
// Any command also accepts `--metrics=FILE` / `--metrics-prom=FILE`
// (stripped before dispatch): after a successful run, the obs registry is
// written as a JSON snapshot ({"deterministic":{...},"timing":{...}}) or
// Prometheus text to FILE ('-' = stdout). serve additionally accepts
// `--metrics-rows` to interleave per-window `#metrics` snapshot rows into
// the --export stream.
//
// The store and catalog subcommands operate on CARBONEDGE_STORE_DIR (or the
// directory given as `store|catalog --dir <path> <subcommand>`).
//
// Regions: florida, west_us, italy, central_eu, cdn_us, cdn_eu.
// Policies: latency, energy, intensity, carbonedge, alpha=<0..1>.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <sstream>

#include "analysis/mesoscale.hpp"
#include "carbon/service.hpp"
#include "carbon/synthesizer.hpp"
#include "carbon/trace.hpp"
#include "carbon/trace_cache.hpp"
#include "carbon/trace_io.hpp"
#include "carbon/zone.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/catalog.hpp"
#include "geo/city.hpp"
#include "geo/coord.hpp"
#include "geo/latency.hpp"
#include "geo/region.hpp"
#include "geo/site.hpp"
#include "geo/spatial_index.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "runner/scenario_grid.hpp"
#include "runner/scenario_runner.hpp"
#include "serve/event_loop.hpp"
#include "serve/event_source.hpp"
#include "serve/export.hpp"
#include "serve/ingest.hpp"
#include "sim/datacenter.hpp"
#include "sim/device.hpp"
#include "store/artifact_store.hpp"
#include "store/site_catalog.hpp"
#include "store/sweep_store.hpp"
#include "store/trace_tier.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace carbonedge;

namespace {

int usage() {
  std::cerr << "usage: carbonedge_cli zones | analyze <region> | radius <km> |\n"
               "       simulate <region> <policy> <epochs> | sweep <region> <epochs> "
               "[--single] |\n"
               "       serve <region> --replay|--stdin [--epochs=<n>] "
               "[--window-epochs=<n>]\n"
               "           [--policy=<p>] [--queue-capacity=<n>] [--ooo=drop|clamp]\n"
               "           [--ema-alpha=<a>] [--ema-reopt=<intensity|response|load>:"
               "<fire>:<rearm>]\n"
               "           [--export=<file|->] [--metrics-rows] |\n"
               "       export-traces <region> <file> |\n"
               "       store [--dir <path>] warm [region...] | ls | verify | gc "
               "[--max-bytes=<n>] |\n"
               "       catalog [--dir <path>] build <sites.tsv> | info <key> |\n"
               "           nearest <key> <lat> <lon> | radius <key> <lat> <lon> <km> |\n"
               "           sweep <key> <epochs> [--max-sites=<n>] [--band=<ms>] |\n"
               "       metrics\n"
               "regions: florida west_us italy central_eu cdn_us cdn_eu\n"
               "policies: latency energy intensity carbonedge alpha=<0..1>\n"
               "store dir: CARBONEDGE_STORE_DIR or store --dir <path>\n"
               "threads: CARBONEDGE_THREADS caps the process worker budget\n"
               "metrics: --metrics=<file|-> / --metrics-prom=<file|-> on any command\n";
  return 2;
}

geo::Region region_by_name(const std::string& name) {
  if (name == "florida") return geo::florida_region();
  if (name == "west_us") return geo::west_us_region();
  if (name == "italy") return geo::italy_region();
  if (name == "central_eu") return geo::central_eu_region();
  if (name == "cdn_us") return geo::cdn_region(geo::Continent::kNorthAmerica, 40);
  if (name == "cdn_eu") return geo::cdn_region(geo::Continent::kEurope, 40);
  throw std::invalid_argument("unknown region: " + name);
}

core::PolicyConfig policy_by_name(const std::string& name) {
  if (name == "latency") return core::PolicyConfig::latency_aware();
  if (name == "energy") return core::PolicyConfig::energy_aware();
  if (name == "intensity") return core::PolicyConfig::intensity_aware();
  if (name == "carbonedge") return core::PolicyConfig::carbon_edge();
  if (name.rfind("alpha=", 0) == 0) {
    return core::PolicyConfig::multi_objective(std::stod(name.substr(6)));
  }
  throw std::invalid_argument("unknown policy: " + name);
}

int cmd_zones() {
  const auto& db = geo::CityDatabase::builtin();
  const auto& catalog = carbon::ZoneCatalog::builtin();
  util::Table table({"Zone", "Country", "Static mix CI", "Calibrated", "Population (k)"});
  for (const geo::City& city : db.all()) {
    const carbon::ZoneSpec spec = catalog.spec_for(city);
    table.add_row({city.name, city.country,
                   util::format_fixed(spec.capacity.carbon_intensity(), 0),
                   catalog.has_override(city) ? "yes" : "",
                   util::format_fixed(city.population_k, 0)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_analyze(const std::string& region_name) {
  const geo::Region region = region_by_name(region_name);
  carbon::CarbonIntensityService service;
  service.add_region(region);
  const analysis::RegionSummary summary = analysis::summarize_region(region, service);
  util::Table table({"Zone", "mean g/kWh", "min", "max", "low-carbon", "daily swing",
                     "seasonal range"});
  table.set_title(summary.region + " (" + util::format_fixed(summary.width_km, 0) + "km x " +
                  util::format_fixed(summary.height_km, 0) + "km)");
  for (const analysis::ZoneStats& z : summary.zones) {
    table.add_row({z.zone, util::format_fixed(z.mean_g_kwh, 0),
                   util::format_fixed(z.min_g_kwh, 0), util::format_fixed(z.max_g_kwh, 0),
                   util::format_percent(z.low_carbon_share, 0),
                   util::format_fixed(z.mean_daily_swing, 0),
                   util::format_fixed(z.seasonal_range, 0)});
  }
  table.print(std::cout);
  std::cout << "yearly spread " << util::format_fixed(summary.yearly_spread, 1)
            << "x, snapshot spread " << util::format_fixed(summary.snapshot_spread, 1) << "x\n";
  return 0;
}

int cmd_radius(double km) {
  std::vector<geo::City> sites = geo::cdn_region(geo::Continent::kNorthAmerica).resolve();
  const auto eu = geo::cdn_region(geo::Continent::kEurope).resolve();
  sites.insert(sites.end(), eu.begin(), eu.end());
  const std::vector<double> means = analysis::yearly_means(sites);
  const analysis::RadiusStudy study =
      analysis::radius_study(sites, means, geo::LatencyModel{}, km);
  std::cout << "radius " << km << " km over " << sites.size() << " sites:\n"
            << "  sites with >20% best saving: "
            << util::format_percent(study.fraction_above_20, 0) << "\n"
            << "  sites with >40% best saving: "
            << util::format_percent(study.fraction_above_40, 0) << "\n"
            << "  median best saving: " << util::format_fixed(study.median_saving, 1) << "%\n"
            << "  median one-way latency: " << util::format_fixed(study.median_latency_ms, 1)
            << " ms\n";
  return 0;
}

int cmd_sweep(const std::string& region_name, std::uint32_t epochs, bool single) {
  // Deterministic scenario sweep over every engine feature the intra-epoch
  // shards touch — deferral, monthly + cost-aware re-optimization, failure
  // injection — printed as the runner's summary table. The output contains
  // no timings, so two runs with different CARBONEDGE_THREADS must be
  // byte-identical; the CI determinism gate diffs exactly this. --single
  // collapses the grid to one CarbonEdge cell, putting the whole worker
  // budget on intra-simulation sharding.
  core::SimulationConfig config;
  config.epochs = epochs;
  config.workload.arrivals_per_site = 1.0;
  config.workload.mean_lifetime_epochs = 12.0;
  config.workload.max_defer_epochs = 6;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.seed = 1234;
  config.reoptimize_every = 16;
  config.migration.cost_aware = true;
  config.failures.mtbf_epochs = 300.0;
  runner::ScenarioGrid grid(config);
  grid.with_regions({region_by_name(region_name)});
  if (single) {
    grid.with_policies({core::PolicyConfig::carbon_edge()});
  } else {
    grid.with_policies({core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()})
        .with_defer_epochs({0, 6})
        .with_workload_seeds({1, 2});
  }
  // CARBONEDGE_STORE_DIR attaches the persistent sweep store (same
  // convention as the benches' --store): cells resume from disk, fresh
  // ones persist back. The gate runs without the variable; either way the
  // summary has a Store column ("-" storeless, "ok"/"FAIL:<n>w" with one),
  // and its bytes stay thread-count-invariant.
  runner::ScenarioRunnerOptions options;
  const std::string store_dir = util::env::get_or("CARBONEDGE_STORE_DIR", "");
  if (!store_dir.empty()) {
    auto artifacts = std::make_shared<store::ArtifactStore>(store_dir);
    carbon::TraceCache::global().set_store(store::make_trace_tier(artifacts));
    options.sweep_store = std::make_shared<store::SweepStore>(std::move(artifacts));
  }
  const auto outcomes = runner::ScenarioRunner(options).run(grid);
  runner::ScenarioRunner::summarize(outcomes, options.sweep_store.get()).print(std::cout);
  return 0;
}

int cmd_simulate(const std::string& region_name, const std::string& policy_name,
                 std::uint32_t epochs) {
  const geo::Region region = region_by_name(region_name);
  carbon::CarbonIntensityService service;
  service.add_region(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
  core::SimulationConfig config;
  config.policy = policy_by_name(policy_name);
  config.epochs = epochs;
  config.workload.arrivals_per_site = 0.5;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  const core::SimulationResult result = simulation.run(config);
  std::cout << core::describe(config.policy) << " over " << epochs << " epochs on "
            << region.name << ":\n"
            << "  carbon: " << util::format_fixed(result.telemetry.total_carbon_g(), 1)
            << " g\n"
            << "  energy: " << util::format_fixed(result.telemetry.total_energy_wh(), 1)
            << " Wh\n"
            << "  mean RTT: " << util::format_fixed(result.telemetry.mean_rtt_ms(), 2)
            << " ms\n"
            << "  placed/rejected: " << result.apps_placed << "/" << result.apps_rejected
            << "\n  mean decision time: " << util::format_fixed(result.mean_solve_ms, 2)
            << " ms\n";
  return 0;
}

// ----------------------------------------------------------------- serve --

double parse_flag_double(const std::string& arg, std::size_t prefix) {
  std::size_t used = 0;
  const std::string value = arg.substr(prefix);
  const double parsed = std::stod(value, &used);
  if (used != value.size()) throw std::invalid_argument("bad number in " + arg);
  return parsed;
}

std::uint64_t parse_flag_unsigned(const std::string& arg, std::size_t prefix) {
  const std::string value = arg.substr(prefix);
  if (value.empty() || value.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("bad count in " + arg);
  }
  return std::stoull(value);
}

// `--ema-reopt=<signal>:<fire>:<rearm>`, repeatable (one per signal).
void parse_ema_reopt(const std::string& arg, serve::EmaReoptConfig& ema) {
  const std::string value = arg.substr(12);
  const std::size_t first = value.find(':');
  const std::size_t second = first == std::string::npos ? first : value.find(':', first + 1);
  if (second == std::string::npos) {
    throw std::invalid_argument("expected --ema-reopt=<signal>:<fire>:<rearm>, got " + arg);
  }
  const std::string signal = value.substr(0, first);
  serve::EmaTrigger trigger;
  trigger.enabled = true;
  trigger.fire = std::stod(value.substr(first + 1, second - first - 1));
  trigger.rearm = std::stod(value.substr(second + 1));
  if (signal == "intensity") {
    ema.intensity = trigger;
  } else if (signal == "response") {
    ema.response_ms = trigger;
  } else if (signal == "load") {
    ema.load_rps = trigger;
  } else {
    throw std::invalid_argument("unknown --ema-reopt signal: " + signal);
  }
  ema.enabled = true;
}

int cmd_serve(std::vector<std::string> args) {
  const std::string region_name = args.front();
  args.erase(args.begin());

  bool replay = false;
  bool from_stdin = false;
  std::uint32_t epochs = 168;
  std::string policy_name = "carbonedge";
  std::string export_path;
  serve::ServeConfig serve_config;
  serve_config.window_epochs = 8;
  for (const std::string& arg : args) {
    if (arg == "--replay") {
      replay = true;
    } else if (arg == "--stdin") {
      from_stdin = true;
    } else if (arg.rfind("--epochs=", 0) == 0) {
      epochs = static_cast<std::uint32_t>(parse_flag_unsigned(arg, 9));
    } else if (arg.rfind("--window-epochs=", 0) == 0) {
      serve_config.window_epochs = static_cast<std::uint32_t>(parse_flag_unsigned(arg, 16));
    } else if (arg.rfind("--queue-capacity=", 0) == 0) {
      serve_config.queue_capacity = parse_flag_unsigned(arg, 17);
    } else if (arg == "--ooo=drop") {
      serve_config.out_of_order = serve::OutOfOrderPolicy::kDrop;
    } else if (arg == "--ooo=clamp") {
      serve_config.out_of_order = serve::OutOfOrderPolicy::kClamp;
    } else if (arg.rfind("--policy=", 0) == 0) {
      policy_name = arg.substr(9);
    } else if (arg.rfind("--ema-alpha=", 0) == 0) {
      serve_config.ema_reopt.alpha = parse_flag_double(arg, 12);
    } else if (arg.rfind("--ema-reopt=", 0) == 0) {
      parse_ema_reopt(arg, serve_config.ema_reopt);
    } else if (arg.rfind("--export=", 0) == 0) {
      export_path = arg.substr(9);
    } else if (arg == "--metrics-rows") {
      serve_config.metrics_rows = true;
    } else {
      std::cerr << "error: unknown serve argument " << arg << "\n";
      return 2;
    }
  }
  if (replay == from_stdin) {
    std::cerr << "error: serve needs exactly one of --replay / --stdin\n";
    return 2;
  }

  // The sweep scenario's engine knobs (deferral, cost-aware re-optimization,
  // failure injection), so a replay exercises the full epoch body. With
  // --ema-reopt the trigger replaces the fixed cadence.
  core::SimulationConfig config;
  config.policy = policy_by_name(policy_name);
  config.epochs = epochs;
  config.workload.arrivals_per_site = 1.0;
  config.workload.mean_lifetime_epochs = 12.0;
  config.workload.max_defer_epochs = 6;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.seed = 1234;
  config.reoptimize_every = 16;
  config.migration.cost_aware = true;
  config.failures.mtbf_epochs = 300.0;
  serve_config.sim = config;

  const geo::Region region = region_by_name(region_name);
  carbon::CarbonIntensityService service;
  service.add_region(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);

  std::unique_ptr<serve::EventSource> source;
  serve::CsvEventSource* csv_source = nullptr;
  if (replay) {
    source = std::make_unique<serve::TraceReplaySource>(
        config.workload, simulation.pristine_cluster(), config.epochs, config.epoch_hours);
  } else {
    auto csv = std::make_unique<serve::CsvEventSource>(
        std::cin, serve::CsvEventSource::ErrorPolicy::kSkip);
    csv_source = csv.get();
    source = std::move(csv);
  }

  std::ofstream export_file;
  std::unique_ptr<serve::OstreamSink> sink;
  std::unique_ptr<serve::WindowCsvExporter> exporter;
  if (!export_path.empty()) {
    if (export_path == "-") {
      sink = std::make_unique<serve::OstreamSink>(std::cout);
    } else {
      export_file.open(export_path);
      if (!export_file) {
        std::cerr << "error: cannot open " << export_path << "\n";
        return 1;
      }
      sink = std::make_unique<serve::OstreamSink>(export_file);
    }
    exporter = std::make_unique<serve::WindowCsvExporter>(*sink);
  }

  serve::EventLoop loop(simulation, serve_config);
  const serve::ServeResult result = loop.run(*source, exporter.get());

  // No timings in this summary: the CI determinism gate diffs serve output
  // across CARBONEDGE_THREADS values, byte for byte.
  const auto& sim_result = result.sim;
  std::cout << "serve " << region.name << ": " << epochs << " epochs in "
            << result.windows.size() << " windows of " << serve_config.window_epochs << "\n"
            << "  ingest: " << result.ingest.accepted << " events accepted, "
            << result.ingest.dropped_overflow << " overflow-dropped, "
            << result.ingest.dropped_stale << " stale-dropped, "
            << result.ingest.clamped_stale << " clamped\n";
  if (csv_source != nullptr && csv_source->rejected_lines() > 0) {
    std::cout << "  rejected lines: " << csv_source->rejected_lines() << " (last: "
              << csv_source->last_error() << ")\n";
  }
  std::cout << "  placed/rejected/expired: " << sim_result.apps_placed << "/"
            << sim_result.apps_rejected << "/" << sim_result.apps_expired_deferred << "\n"
            << "  migrations: " << sim_result.migrations << " ("
            << sim_result.migrations_skipped << " skipped), reopt fires: "
            << result.reopt_fires << "\n"
            << "  failures: " << sim_result.server_failures << ", downtime epochs: "
            << sim_result.app_downtime_epochs << "\n"
            << "  carbon: " << util::format_fixed(sim_result.telemetry.total_carbon_g(), 1)
            << " g, energy: " << util::format_fixed(sim_result.telemetry.total_energy_wh(), 1)
            << " Wh, mean RTT: " << util::format_fixed(sim_result.telemetry.mean_rtt_ms(), 2)
            << " ms\n";
  if (exporter != nullptr) {
    std::cout << "  export: " << result.exports.lines_written << " lines written, "
              << result.exports.lines_dropped << " dropped\n";
  }
  return 0;
}

int cmd_export(const std::string& region_name, const std::string& path) {
  const geo::Region region = region_by_name(region_name);
  const auto& catalog = carbon::ZoneCatalog::builtin();
  const carbon::TraceSynthesizer synthesizer;
  const std::vector<carbon::CarbonTrace> traces =
      synthesizer.synthesize(catalog.specs_for(region.resolve()));
  carbon::save_traces(path, traces);
  std::cout << "wrote " << traces.size() << " zone traces ("
            << traces.front().hours() << " hours each) to " << path << "\n";
  return 0;
}

// ----------------------------------------------------------------- store --

int cmd_store_warm(const std::shared_ptr<store::ArtifactStore>& artifacts,
                   std::vector<std::string> region_names) {
  if (region_names.empty()) {
    region_names = {"florida", "west_us", "italy", "central_eu", "cdn_us", "cdn_eu"};
  }
  carbon::TraceCache& cache = carbon::TraceCache::global();
  cache.set_store(store::make_trace_tier(artifacts));
  const std::uint64_t syntheses_before = cache.syntheses();
  const std::uint64_t disk_before = cache.disk_hits();
  util::Table table({"Region", "Zones"});
  for (const std::string& name : region_names) {
    const geo::Region region = region_by_name(name);
    carbon::CarbonIntensityService service;
    service.add_region(region);
    table.add_row({region.name, std::to_string(region.cities.size())});
  }
  table.print(std::cout);
  std::cout << "store " << artifacts->root().string() << ": "
            << (cache.syntheses() - syntheses_before) << " traces synthesized, "
            << (cache.disk_hits() - disk_before) << " already on disk\n";
  return 0;
}

int cmd_store_ls(const store::ArtifactStore& artifacts) {
  util::Table table({"Kind", "Key", "Bytes"});
  table.set_title("artifact store " + artifacts.root().string());
  std::uintmax_t total = 0;
  const auto entries = artifacts.list();
  for (const auto& entry : entries) {
    table.add_row({store::to_string(entry.kind), entry.key, std::to_string(entry.file_bytes)});
    total += entry.file_bytes;
  }
  table.print(std::cout);
  std::cout << entries.size() << " entries, " << total << " bytes\n";
  return 0;
}

int cmd_store_verify(const store::ArtifactStore& artifacts) {
  std::size_t ok = 0;
  std::size_t corrupt = 0;
  for (const auto& entry : artifacts.list(/*verify=*/true)) {
    if (entry.intact) {
      ++ok;
    } else {
      ++corrupt;
      std::cout << "CORRUPT " << store::to_string(entry.kind) << "/" << entry.key << "\n";
    }
  }
  std::cout << ok << " intact, " << corrupt << " corrupt\n";
  return corrupt == 0 ? 0 : 1;
}

int cmd_store_gc(const store::ArtifactStore& artifacts, const std::vector<std::string>& args) {
  std::uintmax_t max_bytes = 0;
  for (const std::string& arg : args) {
    if (arg.rfind("--max-bytes=", 0) == 0) {
      const std::string value = arg.substr(12);
      // All-digits check up front: std::stoull would happily wrap "-5" to
      // ~1.8e19 and bless an effectively unlimited cap.
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        throw std::invalid_argument("bad --max-bytes: " + value);
      }
      max_bytes = std::stoull(value);
    } else {
      std::cerr << "error: unknown gc argument " << arg << "\n";
      return 2;
    }
  }
  const store::ArtifactStore::GcReport report = artifacts.gc(max_bytes);
  std::cout << "removed " << report.removed_files << " files ("
            << report.reclaimed_bytes << " bytes: temp leftovers + corrupt entries)\n";
  if (max_bytes > 0) {
    std::cout << "evicted " << report.evicted_files << " entries (" << report.evicted_bytes
              << " bytes: least recently used beyond " << max_bytes << " bytes)\n";
  }
  return 0;
}

int cmd_store(int argc, char** argv) {
  // `store [--dir <path>] <subcommand> [args...]`; without --dir the
  // directory comes from CARBONEDGE_STORE_DIR.
  std::vector<std::string> args(argv + 2, argv + argc);
  std::string dir = util::env::get_or("CARBONEDGE_STORE_DIR", "");
  if (args.size() >= 2 && args[0] == "--dir") {
    dir = args[1];
    args.erase(args.begin(), args.begin() + 2);
  }
  if (args.empty()) return usage();
  if (dir.empty()) {
    std::cerr << "error: no store directory (set CARBONEDGE_STORE_DIR or pass --dir)\n";
    return 2;
  }
  const auto artifacts = std::make_shared<store::ArtifactStore>(dir);
  const std::string sub = args[0];
  args.erase(args.begin());
  if (sub == "warm") return cmd_store_warm(artifacts, std::move(args));
  if (sub == "ls") return cmd_store_ls(*artifacts);
  if (sub == "verify") return cmd_store_verify(*artifacts);
  if (sub == "gc") return cmd_store_gc(*artifacts, args);
  return usage();
}

// --------------------------------------------------------------- catalog --

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

geo::CompiledSiteCatalog require_catalog(const store::ArtifactStore& artifacts,
                                         const std::string& key) {
  auto catalog = store::load_site_catalog(artifacts, key);
  if (!catalog) {
    throw std::runtime_error("no compiled catalog under key " + key +
                             " (build one with `catalog build <sites.tsv>`)");
  }
  return std::move(*catalog);
}

int cmd_catalog_build(const store::ArtifactStore& artifacts, const std::string& path) {
  const std::string key = store::build_site_catalog(artifacts, read_text_file(path));
  // Round-trip through the store before reporting success: the count below
  // comes from the decoded blob, not the parse, so a publish that cannot be
  // read back fails here instead of at first use.
  const geo::CompiledSiteCatalog catalog = require_catalog(artifacts, key);
  std::cout << "compiled " << catalog.size() << " sites from " << path << "\n"
            << "key " << key << "\n";
  return 0;
}

int cmd_catalog_info(const store::ArtifactStore& artifacts, const std::string& key) {
  const geo::CompiledSiteCatalog catalog = require_catalog(artifacts, key);
  std::size_t na = 0;
  std::size_t eu = 0;
  double population_k = 0.0;
  std::vector<geo::GeoPoint> points;
  points.reserve(catalog.size());
  for (const geo::City& city : catalog.all()) {
    (city.continent == geo::Continent::kNorthAmerica ? na : eu) += 1;
    population_k += city.population_k;
    points.push_back(city.location);
  }
  const geo::BoundingBox box = geo::bounding_box(points);
  std::cout << "catalog " << key << ": " << catalog.size() << " sites (" << na << " NA, " << eu
            << " EU)\n"
            << "  population: " << util::format_fixed(population_k / 1000.0, 1) << " M\n"
            << "  extent: " << util::format_fixed(box.width_km(), 0) << " km x "
            << util::format_fixed(box.height_km(), 0) << " km\n";
  return 0;
}

int cmd_catalog_nearest(const store::ArtifactStore& artifacts, const std::string& key,
                        double lat, double lon) {
  const geo::CompiledSiteCatalog catalog = require_catalog(artifacts, key);
  const geo::SpatialIndex index(catalog);
  const geo::GeoPoint query{lat, lon};
  const auto id = index.nearest(query);
  if (!id) {
    std::cout << "catalog is empty\n";
    return 1;
  }
  const geo::City& city = catalog.by_id(*id);
  std::cout << "nearest to (" << util::format_fixed(lat, 4) << ", "
            << util::format_fixed(lon, 4) << "): " << city.name << ", " << city.country << " ("
            << util::format_fixed(geo::haversine_km(query, city.location), 1) << " km)\n";
  return 0;
}

int cmd_catalog_radius(const store::ArtifactStore& artifacts, const std::string& key,
                       double lat, double lon, double km) {
  const geo::CompiledSiteCatalog catalog = require_catalog(artifacts, key);
  const geo::SpatialIndex index(catalog);
  const geo::GeoPoint query{lat, lon};
  // Ascending SiteId with exact haversine distances: byte-identical to a
  // brute-force scan (the determinism gate diffs this output).
  util::Table table({"Site", "Country", "km"});
  table.set_title(util::format_fixed(km, 0) + " km around (" + util::format_fixed(lat, 4) +
                  ", " + util::format_fixed(lon, 4) + ")");
  for (const geo::SiteId id : index.within_radius(query, km)) {
    const geo::City& city = catalog.by_id(id);
    table.add_row({city.name, city.country,
                   util::format_fixed(geo::haversine_km(query, city.location), 1)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_catalog_sweep(const store::ArtifactStore& artifacts, std::vector<std::string> args) {
  const std::string key = args[0];
  const std::uint32_t epochs = static_cast<std::uint32_t>(std::stoul(args[1]));
  std::size_t max_sites = 0;
  double band = 0.0;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i].rfind("--max-sites=", 0) == 0) {
      max_sites = parse_flag_unsigned(args[i], 12);
    } else if (args[i].rfind("--band=", 0) == 0) {
      band = parse_flag_double(args[i], 7);
    } else {
      std::cerr << "error: unknown catalog sweep argument " << args[i] << "\n";
      return 2;
    }
  }

  const geo::CompiledSiteCatalog catalog = require_catalog(artifacts, key);
  const geo::Region region =
      geo::catalog_region(catalog, "catalog " + key.substr(0, 8), max_sites);

  // The same engine knobs as `sweep --single`, collapsed to one CarbonEdge
  // cell; --band switches the cell's geography to the sparse
  // BandedLatencyMatrix. No sweep store is attached even though a --dir is
  // in hand: the determinism gate reruns this at several thread counts and
  // must diff recomputations, not a warm resume.
  core::SimulationConfig config;
  config.epochs = epochs;
  config.workload.arrivals_per_site = 1.0;
  config.workload.mean_lifetime_epochs = 12.0;
  config.workload.max_defer_epochs = 6;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.seed = 1234;
  config.reoptimize_every = 16;
  config.migration.cost_aware = true;
  config.failures.mtbf_epochs = 300.0;
  runner::ScenarioGrid grid(config);
  grid.with_regions({region}).with_policies({core::PolicyConfig::carbon_edge()});
  if (band > 0.0) grid.with_latency_bands({band});
  const auto outcomes = runner::ScenarioRunner().run(grid);
  runner::ScenarioRunner::summarize(outcomes).print(std::cout);
  return 0;
}

int cmd_catalog(int argc, char** argv) {
  // `catalog [--dir <path>] <subcommand> [args...]`; same directory
  // convention as `store`.
  std::vector<std::string> args(argv + 2, argv + argc);
  std::string dir = util::env::get_or("CARBONEDGE_STORE_DIR", "");
  if (args.size() >= 2 && args[0] == "--dir") {
    dir = args[1];
    args.erase(args.begin(), args.begin() + 2);
  }
  if (args.empty()) return usage();
  if (dir.empty()) {
    std::cerr << "error: no store directory (set CARBONEDGE_STORE_DIR or pass --dir)\n";
    return 2;
  }
  const store::ArtifactStore artifacts(dir);
  const std::string sub = args[0];
  args.erase(args.begin());
  if (sub == "build" && args.size() == 1) return cmd_catalog_build(artifacts, args[0]);
  if (sub == "info" && args.size() == 1) return cmd_catalog_info(artifacts, args[0]);
  if (sub == "nearest" && args.size() == 3) {
    return cmd_catalog_nearest(artifacts, args[0], std::stod(args[1]), std::stod(args[2]));
  }
  if (sub == "radius" && args.size() == 4) {
    return cmd_catalog_radius(artifacts, args[0], std::stod(args[1]), std::stod(args[2]),
                              std::stod(args[3]));
  }
  if (sub == "sweep" && args.size() >= 2) return cmd_catalog_sweep(artifacts, std::move(args));
  return usage();
}

int cmd_metrics() {
  // Enumerate the registry after collecting the sampled process gauges. A
  // fresh process registers most metrics lazily at first use, so right
  // after startup this lists only the process gauges — run it with
  // --metrics=- on a real command to see the full catalog populated.
  obs::collect_process_gauges();
  util::Table table({"Metric", "Kind", "View", "Value", "Help"});
  obs::Registry::global().visit([&](const obs::MetricRef& metric) {
    std::string kind;
    std::string value;
    switch (metric.kind) {
      case obs::MetricKind::kCounter:
        kind = "counter";
        value = std::to_string(metric.counter->value());
        break;
      case obs::MetricKind::kGauge:
        kind = "gauge";
        value = util::format_fixed(metric.gauge->value(), 0);
        break;
      case obs::MetricKind::kHistogram:
        kind = "histogram";
        value = "n=" + std::to_string(metric.histogram->count());
        break;
    }
    table.add_row({std::string(metric.name), kind,
                   metric.view == obs::View::kDeterministic ? "det" : "timing", value,
                   std::string(metric.help)});
  });
  table.print(std::cout);
  return 0;
}

/// Write a metrics snapshot to `path` ('-' = stdout). Returns false (with
/// a message) when the file cannot be opened.
bool write_metrics_file(const std::string& path, const std::string& content) {
  if (path == "-") {
    std::cout << content << "\n";
    return true;
  }
  std::ofstream out(path, std::ios::binary);
  out << content;
  if (!out) {
    std::cerr << "error: cannot write metrics to " << path << "\n";
    return false;
  }
  return true;
}

int dispatch(int argc, char** argv) {
  const std::string command = argv[1];
  try {
    if (command == "zones") return cmd_zones();
    if (command == "analyze" && argc >= 3) return cmd_analyze(argv[2]);
    if (command == "radius" && argc >= 3) return cmd_radius(std::stod(argv[2]));
    if (command == "simulate" && argc >= 5) {
      return cmd_simulate(argv[2], argv[3], static_cast<std::uint32_t>(std::stoul(argv[4])));
    }
    if (command == "sweep" && argc >= 4) {
      bool single = false;
      if (argc >= 5) {
        // A misspelled flag must fail loudly: the determinism gate relies
        // on --single actually selecting the single-cell probe.
        if (std::string(argv[4]) != "--single" || argc > 5) return usage();
        single = true;
      }
      return cmd_sweep(argv[2], static_cast<std::uint32_t>(std::stoul(argv[3])), single);
    }
    if (command == "serve" && argc >= 3) {
      return cmd_serve(std::vector<std::string>(argv + 2, argv + argc));
    }
    if (command == "export-traces" && argc >= 4) return cmd_export(argv[2], argv[3]);
    if (command == "store" && argc >= 3) return cmd_store(argc, argv);
    if (command == "catalog" && argc >= 3) return cmd_catalog(argc, argv);
    if (command == "metrics") return cmd_metrics();
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Observability flags work on every command. They are stripped from argv
  // before dispatch (the per-command parsers stay strict — `sweep` still
  // rejects unknown flags loudly) and written only after a successful run,
  // so a usage error never emits a half-populated snapshot.
  std::string metrics_json_path;
  std::string metrics_prom_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    bool strip = true;
    if (arg.rfind("--metrics=", 0) == 0) {
      metrics_json_path = arg.substr(10);
    } else if (arg.rfind("--metrics-prom=", 0) == 0) {
      metrics_prom_path = arg.substr(15);
    } else {
      strip = false;
    }
    if (strip) {
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  if (argc < 2) return usage();

  const int rc = dispatch(argc, argv);
  if (rc == 0) {
    if (!metrics_json_path.empty() &&
        !write_metrics_file(metrics_json_path, obs::snapshot_json())) {
      return 1;
    }
    if (!metrics_prom_path.empty() &&
        !write_metrics_file(metrics_prom_path, obs::snapshot_prometheus())) {
      return 1;
    }
  }
  return rc;
}
