// Ablation: forecast quality for the mean forecast Ī_j (DESIGN.md section
// 5). Compares oracle / persistence / moving-average / diurnal forecasters:
// (a) MAPE against the true trace and (b) end-to-end carbon savings when
// CarbonEdge places with each forecaster.
//
// (b) is a ScenarioGrid over the forecaster axis (forecaster x policy, 8
// month-long cells) dispatched in parallel by the ScenarioRunner; (a) is
// pure trace arithmetic and stays inline.
#include "bench_util.hpp"
#include "carbon/caltime.hpp"

#include "carbon/forecast.hpp"
#include "carbon/service.hpp"
#include "carbon/trace.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/region.hpp"
#include "geo/site.hpp"
#include "runner/scenario_grid.hpp"
#include "runner/scenario_runner.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Ablation", "Carbon-intensity forecasters");

  const geo::Region region = geo::central_eu_region();

  // (a) Forecast accuracy per zone.
  {
    carbon::CarbonIntensityService reference;
    reference.add_region(region);
    util::Table table({"Zone", "persistence", "moving_average(24h)", "diurnal(7d)"});
    table.set_title("Forecast MAPE over Feb-Nov, 24h horizon");
    for (const geo::City& city : region.resolve()) {
      const carbon::CarbonTrace& trace = reference.trace(city.name);
      const carbon::PersistenceForecaster persistence;
      const carbon::MovingAverageForecaster moving(24);
      const carbon::DiurnalForecaster diurnal(7);
      const carbon::HourIndex start = 24 * 31;
      const carbon::HourIndex end = carbon::kHoursPerYear - 24 * 31;
      table.add_row(city.name,
                    {100.0 * carbon::forecast_mape(persistence, trace, start, end, 24),
                     100.0 * carbon::forecast_mape(moving, trace, start, end, 24),
                     100.0 * carbon::forecast_mape(diurnal, trace, start, end, 24)},
                    1);
    }
    table.print(std::cout);
  }

  // (b) End-to-end: savings when placing with each forecaster.
  const std::vector<std::string> forecasters = {"oracle", "persistence", "moving_average",
                                                "diurnal"};
  const std::vector<core::PolicyConfig> policies = {core::PolicyConfig::latency_aware(),
                                                    core::PolicyConfig::carbon_edge()};
  core::SimulationConfig config;
  config.epochs = 31 * 24;
  config.workload.arrivals_per_site = 0.3;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.mean_lifetime_epochs = 24.0;
  config.workload.latency_limit_rtt_ms = 25.0;
  config.forecast_horizon_hours = 24;

  runner::ScenarioGrid grid(bench::apply_smoke_epochs(config));
  grid.with_regions({region}).with_policies(policies).with_forecasters(forecasters);
  const auto outcomes = runner::ScenarioRunner().run(grid);

  util::Table table({"Forecaster", "Saving vs Latency-aware", "dRTT (ms)"});
  table.set_title("CarbonEdge placement quality per forecaster (1 month, Central EU)");
  // Row-major order: policy (outer), forecaster (inner).
  for (std::size_t f = 0; f < forecasters.size(); ++f) {
    const core::SimulationResult& base = outcomes[f].result;
    const core::SimulationResult& ce = outcomes[forecasters.size() + f].result;
    table.add_row({forecasters[f], util::format_percent(core::carbon_saving(base, ce)),
                   util::format_fixed(core::latency_increase_ms(base, ce), 1)});
  }
  table.print(std::cout);
  bench::print_takeaway(
      "Spatial rank between zones is stable, so even simple forecasters retain nearly all "
      "of the oracle's savings; diurnal climatology is the best causal choice.");
  return 0;
}
