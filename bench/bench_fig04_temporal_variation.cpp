// Figure 4: spatial-temporal carbon-intensity variation in the West US —
// (a) a two-day hourly window around Dec 25-27 and (b) monthly means over
// the year. Paper call-outs: Flagstaff swings ~300 g/kWh within a day
// (solar); Kingman changes ~200 g/kWh between March and November.
#include "bench_util.hpp"
#include "carbon/caltime.hpp"

#include <algorithm>

#include "carbon/synthesizer.hpp"
#include "carbon/trace.hpp"
#include "carbon/zone.hpp"
#include "geo/region.hpp"
#include "geo/site.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 4", "Spatial-temporal variations in the West US");

  const geo::Region region = geo::west_us_region();
  const auto& catalog = carbon::ZoneCatalog::builtin();
  const carbon::TraceSynthesizer synthesizer;
  std::vector<carbon::CarbonTrace> traces;
  std::vector<std::string> names;
  for (const geo::City& city : region.resolve()) {
    traces.push_back(synthesizer.synthesize(catalog.spec_for(city)));
    names.push_back(city.name);
  }

  // (a) Two-day window, Dec 25 00:00 through Dec 27 00:00, 3h sampling.
  const carbon::HourIndex dec25 = carbon::month_start_hour(11) + 24 * 24;
  util::Table two_day({"Hour (Dec 25-27)", names[0], names[1], names[2], names[3], names[4]});
  two_day.set_title("Figure 4a: two-day hourly carbon intensity (g CO2eq/kWh)");
  for (std::uint32_t h = 0; h <= 48; h += 3) {
    std::vector<double> row;
    for (const carbon::CarbonTrace& trace : traces) row.push_back(trace.at(dec25 + h));
    two_day.add_row("t+" + std::to_string(h) + "h", row, 1);
  }
  two_day.print(std::cout);

  // Intra-day swing per zone (max - min of mean day shape).
  for (std::size_t z = 0; z < traces.size(); ++z) {
    std::array<double, 24> shape{};
    for (carbon::HourIndex h = 0; h < traces[z].hours(); ++h) {
      shape[carbon::hour_of_day(h)] += traces[z].at(h) / 365.0;
    }
    const double swing = *std::max_element(shape.begin(), shape.end()) -
                         *std::min_element(shape.begin(), shape.end());
    bench::print_takeaway(names[z] + " mean intra-day swing: " +
                          util::format_fixed(swing, 0) + " g/kWh");
  }

  // (b) Monthly means.
  util::Table monthly({"Month", names[0], names[1], names[2], names[3], names[4]});
  monthly.set_title("Figure 4b: monthly mean carbon intensity (g CO2eq/kWh)");
  for (std::uint32_t m = 0; m < carbon::kMonthsPerYear; ++m) {
    std::vector<double> row;
    for (const carbon::CarbonTrace& trace : traces) row.push_back(trace.monthly_mean(m));
    monthly.add_row(std::string(carbon::month_name(m)), row, 1);
  }
  monthly.print(std::cout);

  // Kingman seasonal swing (paper: ~200 g/kWh between months, solar-driven).
  const std::size_t kingman = 1;  // region order: LV, Kingman, SD, PHX, FLG
  double month_lo = 1e18;
  double month_hi = 0.0;
  for (std::uint32_t m = 0; m < carbon::kMonthsPerYear; ++m) {
    const double mean = traces[kingman].monthly_mean(m);
    month_lo = std::min(month_lo, mean);
    month_hi = std::max(month_hi, mean);
  }
  bench::print_takeaway("Kingman monthly-mean seasonal range: " +
                        util::format_fixed(month_hi - month_lo, 0) +
                        " g/kWh (paper call-out: ~200, solar-driven)");
  return 0;
}
