// Ablation: the server-activation term of Eq. 6 (DESIGN.md section 5).
// Starts a mesoscale cluster with most servers powered off and compares
// CarbonEdge with the activation term enabled vs zeroed out, with full
// (base + dynamic) energy accounting. Without the term, placement powers on
// green-but-idle servers eagerly and pays their base power.
//
// Expressed as three single-cell ScenarioGrids (the variants differ in the
// DeviceMix's initially_off_per_site and the power-manager config) merged
// into one ScenarioRunner dispatch.
#include "bench_util.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/region.hpp"
#include "runner/scenario_grid.hpp"

#include "runner/scenario_runner.hpp"
#include "sim/device.hpp"
#include "util/table.hpp"

using namespace carbonedge;

namespace {

// The central-EU day with a given activation handling. "all_on" zeroes the
// activation costs by pre-powering everything (so activation never enters
// the objective); otherwise the second server of each site starts cold and
// placement decides.
runner::Scenario make_variant(bool model_activation, bool manage_power) {
  core::SimulationConfig config;
  config.policy = core::PolicyConfig::carbon_edge();
  config.epochs = 24;
  // Bursty load: a large epoch-0 burst that departs after 6 epochs, then a
  // light trickle — so activated spare servers later sit idle and only the
  // power manager can reclaim their base power.
  config.workload.arrivals_per_site = 0.2;
  config.workload.initial_per_site = 6;
  config.workload.initial_lifetime_epochs = 6;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.mean_lifetime_epochs = 8.0;
  config.workload.latency_limit_rtt_ms = 25.0;
  config.account_base_power = true;
  config.power.enabled = manage_power;
  config.power.min_on_per_site = 1;

  // Small Orin Nano servers (a handful of apps each) so the burst genuinely
  // needs the spare server and activation decisions have teeth.
  runner::DeviceMix mix;
  mix.name = "Orin Nano";
  mix.devices = {sim::DeviceType::kOrinNano};
  mix.servers_per_site = 2;
  mix.initially_off_per_site = model_activation ? 1 : 0;

  runner::ScenarioGrid grid(bench::apply_smoke_epochs(config));
  grid.with_regions({geo::central_eu_region()}).with_device_mixes({mix});
  return grid.expand().front();
}

}  // namespace

int main() {
  bench::print_header("Ablation", "Server-activation term (Eq. 6) and power management");

  std::vector<runner::Scenario> scenarios = {
      make_variant(/*model_activation=*/false, /*manage_power=*/false),
      make_variant(/*model_activation=*/true, /*manage_power=*/false),
      make_variant(/*model_activation=*/true, /*manage_power=*/true),
  };
  for (std::size_t i = 0; i < scenarios.size(); ++i) scenarios[i].index = i;
  const auto outcomes = runner::ScenarioRunner().run(std::move(scenarios));

  util::Table table({"Variant", "Carbon (g)", "Energy (Wh)", "Placed", "Rejected"});
  table.set_title("Eq. 6 activation-term ablation (24h, base power accounted)");
  const auto add = [&](const char* name, const core::SimulationResult& result) {
    table.add_row({name, util::format_fixed(result.telemetry.total_carbon_g(), 1),
                   util::format_fixed(result.telemetry.total_energy_wh(), 1),
                   std::to_string(result.apps_placed), std::to_string(result.apps_rejected)});
  };
  add("all servers pre-powered (no activation modeling)", outcomes[0].result);
  add("activation term active (half fleet starts off)", outcomes[1].result);
  add("activation term + idle power management", outcomes[2].result);
  table.print(std::cout);

  bench::print_takeaway(
      "Modeling activation keeps spare servers off unless load justifies them; adding the "
      "idle sweep reclaims base power after departures - both cut total emissions vs an "
      "always-on fleet.");
  return 0;
}
