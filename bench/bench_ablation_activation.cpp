// Ablation: the server-activation term of Eq. 6 (DESIGN.md section 5).
// Starts a mesoscale cluster with most servers powered off and compares
// CarbonEdge with the activation term enabled vs zeroed out, with full
// (base + dynamic) energy accounting. Without the term, placement powers on
// green-but-idle servers eagerly and pays their base power.
#include "bench_util.hpp"

using namespace carbonedge;

namespace {

// Run the central-EU day with a given activation handling. "ignore" zeroes
// the activation costs by pre-powering everything (so activation never
// enters the objective); "model" keeps servers off until placement decides.
core::SimulationResult run_variant(const carbon::CarbonIntensityService& service,
                                   bool model_activation, bool manage_power) {
  const geo::Region region = geo::central_eu_region();
  // Small Orin Nano servers (a handful of apps each) so the burst genuinely
  // needs the spare server and activation decisions have teeth.
  sim::EdgeCluster cluster = sim::make_uniform_cluster(region, 2, sim::DeviceType::kOrinNano);
  if (model_activation) {
    // Start with one server on per site, the second off.
    for (auto& site : cluster.sites()) site.servers()[1].set_powered_on(false);
  }
  core::EdgeSimulation simulation(std::move(cluster), service);
  core::SimulationConfig config;
  config.policy = core::PolicyConfig::carbon_edge();
  config.epochs = 24;
  // Bursty load: a large epoch-0 burst that departs after 6 epochs, then a
  // light trickle — so activated spare servers later sit idle and only the
  // power manager can reclaim their base power.
  config.workload.arrivals_per_site = 0.2;
  config.workload.initial_per_site = 6;
  config.workload.initial_lifetime_epochs = 6;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.mean_lifetime_epochs = 8.0;
  config.workload.latency_limit_rtt_ms = 25.0;
  config.account_base_power = true;
  config.power.enabled = manage_power;
  config.power.min_on_per_site = 1;
  return simulation.run(config);
}

}  // namespace

int main() {
  bench::print_header("Ablation", "Server-activation term (Eq. 6) and power management");

  const auto service = bench::make_service(geo::central_eu_region());

  const core::SimulationResult all_on = run_variant(service, /*model_activation=*/false,
                                                    /*manage_power=*/false);
  const core::SimulationResult activation = run_variant(service, /*model_activation=*/true,
                                                        /*manage_power=*/false);
  const core::SimulationResult managed = run_variant(service, /*model_activation=*/true,
                                                     /*manage_power=*/true);

  util::Table table({"Variant", "Carbon (g)", "Energy (Wh)", "Placed", "Rejected"});
  table.set_title("Eq. 6 activation-term ablation (24h, base power accounted)");
  const auto add = [&](const char* name, const core::SimulationResult& result) {
    table.add_row({name, util::format_fixed(result.telemetry.total_carbon_g(), 1),
                   util::format_fixed(result.telemetry.total_energy_wh(), 1),
                   std::to_string(result.apps_placed), std::to_string(result.apps_rejected)});
  };
  add("all servers pre-powered (no activation modeling)", all_on);
  add("activation term active (half fleet starts off)", activation);
  add("activation term + idle power management", managed);
  table.print(std::cout);

  bench::print_takeaway(
      "Modeling activation keeps spare servers off unless load justifies them; adding the "
      "idle sweep reclaims base power after departures - both cut total emissions vs an "
      "always-on fleet.");
  return 0;
}
