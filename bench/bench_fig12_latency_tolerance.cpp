// Figure 12: effect of the round-trip latency limit (5..30 ms) on carbon
// savings and latency increases for the US and EU CDNs. Expected shape:
// savings grow concavely with the limit (diminishing returns); latency
// increases grow roughly linearly; benefits outweigh overheads everywhere.
//
// Expressed as a ScenarioGrid over the RTT-limit axis (continent x limit x
// policy, 24 quarter-long cells) dispatched in parallel by ScenarioRunner.
#include "bench_util.hpp"
#include "carbon/caltime.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/coord.hpp"
#include "geo/region.hpp"
#include "runner/scenario_grid.hpp"

#include "runner/scenario_runner.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 12", "Effect of latency tolerance on savings and overhead");

  util::Table table({"RTT limit (ms)", "US saving", "US dRTT (ms)", "EU saving",
                     "EU dRTT (ms)"});
  table.set_title("Figure 12: latency-tolerance sweep (3-month simulation)");

  const std::vector<double> limits = {5.0, 10.0, 15.0, 20.0, 25.0, 30.0};
  const std::vector<core::PolicyConfig> policies = {core::PolicyConfig::latency_aware(),
                                                    core::PolicyConfig::carbon_edge()};

  core::SimulationConfig config = bench::cdn_config();
  config.epochs = carbon::kHoursPerYear / 3 / 4;  // one quarter, 3h epochs
  runner::ScenarioGrid grid(bench::apply_smoke_epochs(config));
  grid.with_regions({geo::cdn_region(geo::Continent::kNorthAmerica, 30),
                     geo::cdn_region(geo::Continent::kEurope, 30)})
      .with_policies(policies)
      .with_rtt_limits(limits);
  const auto outcomes = runner::ScenarioRunner().run(grid);

  // Row-major order: region (outermost), policy, RTT limit (innermost).
  const auto cell = [&](std::size_t region, std::size_t policy, std::size_t limit)
      -> const core::SimulationResult& {
    return outcomes[(region * policies.size() + policy) * limits.size() + limit].result;
  };
  for (std::size_t l = 0; l < limits.size(); ++l) {
    std::vector<std::string> row = {util::format_fixed(limits[l], 0)};
    for (std::size_t r = 0; r < 2; ++r) {
      const core::SimulationResult& base = cell(r, 0, l);
      const core::SimulationResult& ce = cell(r, 1, l);
      row.push_back(util::format_percent(core::carbon_saving(base, ce)));
      row.push_back(util::format_fixed(core::latency_increase_ms(base, ce), 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  bench::print_takeaway(
      "Savings rise with the latency budget with diminishing returns; increases in actual "
      "RTT stay below the budget (paper: 10 ms tolerance buys 28%/44.8% US/EU savings).");
  return 0;
}
