// Figure 12: effect of the round-trip latency limit (5..30 ms) on carbon
// savings and latency increases for the US and EU CDNs. Expected shape:
// savings grow concavely with the limit (diminishing returns); latency
// increases grow roughly linearly; benefits outweigh overheads everywhere.
#include "bench_util.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 12", "Effect of latency tolerance on savings and overhead");

  util::Table table({"RTT limit (ms)", "US saving", "US dRTT (ms)", "EU saving",
                     "EU dRTT (ms)"});
  table.set_title("Figure 12: latency-tolerance sweep (3-month simulation)");

  std::vector<std::vector<std::string>> rows;
  for (const double limit : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
    std::vector<std::string> row = {util::format_fixed(limit, 0)};
    for (const geo::Continent continent :
         {geo::Continent::kNorthAmerica, geo::Continent::kEurope}) {
      const geo::Region region = geo::cdn_region(continent, 30);
      const auto service = bench::make_service(region);
      core::EdgeSimulation simulation(
          sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
      core::SimulationConfig config = bench::cdn_config();
      config.epochs = carbon::kHoursPerYear / 3 / 4;  // one quarter, 3h epochs
      config.workload.latency_limit_rtt_ms = limit;
      const auto results = core::run_policies(
          simulation, config,
          {core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()});
      row.push_back(util::format_percent(core::carbon_saving(results[0], results[1])));
      row.push_back(util::format_fixed(core::latency_increase_ms(results[0], results[1]), 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  bench::print_takeaway(
      "Savings rise with the latency budget with diminishing returns; increases in actual "
      "RTT stay below the budget (paper: 10 ms tolerance buys 28%/44.8% US/EU savings).");
  return 0;
}
