// Figure 7: energy consumption, GPU memory, and inference time of the three
// ML workloads (EfficientNetB0, ResNet50, YOLOv4) across the three devices
// (Orin Nano, A2, GTX 1080). Paper: energy spans ~45x across models on one
// device and ~2x across devices for one model.
#include "bench_util.hpp"

#include "sim/app_model.hpp"
#include "sim/device.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 7", "Energy, memory, and inference time of ML workloads");

  const std::vector<sim::DeviceType> devices = {
      sim::DeviceType::kOrinNano, sim::DeviceType::kA2, sim::DeviceType::kGtx1080};

  util::Table energy({"Model", "Orin Nano (J)", "A2 (J)", "GTX 1080 (J)"});
  energy.set_title("Figure 7a: energy per inference");
  util::Table memory({"Model", "Orin Nano (MB)", "A2 (MB)", "GTX 1080 (MB)"});
  memory.set_title("Figure 7b: GPU memory");
  util::Table latency({"Model", "Orin Nano (ms)", "A2 (ms)", "GTX 1080 (ms)"});
  latency.set_title("Figure 7c: inference time");

  for (const sim::ModelType model : sim::kGpuModels) {
    std::vector<double> e;
    std::vector<double> m;
    std::vector<double> t;
    for (const sim::DeviceType device : devices) {
      const sim::WorkloadProfile profile = sim::require_profile(model, device);
      e.push_back(profile.energy_j);
      m.push_back(profile.memory_mb);
      t.push_back(profile.inference_ms);
    }
    energy.add_row(std::string(sim::to_string(model)), e, 3);
    memory.add_row(std::string(sim::to_string(model)), m, 0);
    latency.add_row(std::string(sim::to_string(model)), t, 1);
  }
  energy.print(std::cout);
  memory.print(std::cout);
  latency.print(std::cout);

  const double span_models =
      sim::require_profile(sim::ModelType::kYoloV4, sim::DeviceType::kA2).energy_j /
      sim::require_profile(sim::ModelType::kEfficientNetB0, sim::DeviceType::kA2).energy_j;
  const double span_devices =
      sim::require_profile(sim::ModelType::kResNet50, sim::DeviceType::kGtx1080).energy_j /
      sim::require_profile(sim::ModelType::kResNet50, sim::DeviceType::kOrinNano).energy_j;
  bench::print_takeaway("Energy spans " + util::format_fixed(span_models, 0) +
                        "x across models (paper ~45x) and " +
                        util::format_fixed(span_devices, 1) +
                        "x across devices (paper ~2x).");
  return 0;
}
