// Shared helpers for the benchmark harness. Every bench binary reproduces
// one table or figure of the paper (see DESIGN.md's experiment index),
// printing the same rows/series the paper reports.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "carbon/caltime.hpp"
#include "carbon/service.hpp"
#include "carbon/trace_cache.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "obs/export.hpp"
#include "sim/app_model.hpp"
#include "store/artifact_store.hpp"
#include "store/sweep_store.hpp"
#include "store/trace_tier.hpp"
#include "util/env.hpp"

namespace carbonedge::bench {

inline void print_header(const std::string& id, const std::string& what) {
  std::cout << "\n================================================================\n"
            << id << " - " << what << "\n"
            << "================================================================\n";
}

inline void print_takeaway(const std::string& text) {
  std::cout << ">> " << text << "\n";
}

/// Carbon service over a region with the default calibrated synthesizer
/// (traces shared through the process-wide carbon::TraceCache).
inline carbon::CarbonIntensityService make_service(const geo::Region& region) {
  carbon::CarbonIntensityService service;
  service.add_region(region);
  return service;
}

/// CI smoke support: when CARBONEDGE_SMOKE_EPOCHS is set, cap the epoch
/// count so year-long benches exercise their full code path in seconds.
/// Returns the config unchanged when the variable is absent, so production
/// runs keep the paper's horizons.
inline core::SimulationConfig apply_smoke_epochs(core::SimulationConfig config) {
  const std::string env = util::env::get_or("CARBONEDGE_SMOKE_EPOCHS", "");
  if (!env.empty()) {
    const unsigned long cap = std::strtoul(env.c_str(), nullptr, 10);
    if (cap > 0) {
      config.epochs = std::min(config.epochs, static_cast<std::uint32_t>(cap));
    }
  }
  return config;
}

/// Persistent-store warm path for the year-long benches: `--store[=DIR]`
/// (or the CARBONEDGE_STORE_DIR environment variable) attaches the on-disk
/// artifact store to the process-wide TraceCache and returns a SweepStore
/// to hand to ScenarioRunnerOptions::sweep_store. The flag is removed from
/// argv so harnesses that parse the remaining arguments (google-benchmark)
/// never see it. Returns nullptr when the store is off.
inline std::shared_ptr<store::SweepStore> init_store(int& argc, char** argv) {
  std::string dir = util::env::get_or("CARBONEDGE_STORE_DIR", "");
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--store") == 0 || std::strncmp(arg, "--store=", 8) == 0) {
      if (arg[7] == '=' && arg[8] != '\0') {
        dir = arg + 8;  // explicit value wins over the environment
      } else if (dir.empty()) {
        dir = ".carbonedge-store";  // bare --store (or --store=): env, else default
      }
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  if (dir.empty()) return nullptr;
  auto artifacts = std::make_shared<store::ArtifactStore>(dir);
  carbon::TraceCache::global().set_store(store::make_trace_tier(artifacts));
  return std::make_shared<store::SweepStore>(std::move(artifacts));
}

/// Store hit counters (printed at the end of a --store run): a warmed
/// second run reports zero syntheses — everything came from disk. A
/// degraded store (failed cell writes) is called out explicitly rather
/// than silently producing a cold next run.
inline void print_store_stats(const std::shared_ptr<store::SweepStore>& sweeps) {
  if (sweeps == nullptr) return;
  const carbon::TraceCache& cache = carbon::TraceCache::global();
  std::cout << "[store " << sweeps->artifacts()->root().string() << "] traces: "
            << cache.syntheses() << " synthesized, " << cache.disk_hits()
            << " loaded from disk, " << cache.hits() << " memory hits; sweep cells: "
            << sweeps->stores() << " computed+saved, " << sweeps->hits()
            << " resumed from disk\n";
  if (sweeps->write_failures() > 0) {
    std::cout << "[store] WARNING: " << sweeps->write_failures()
              << " cell writes failed — results were computed but not persisted\n";
  }
}

/// Parses and removes `--metrics=PATH` from argv (same contract as
/// init_store). Call write_metrics_json() with the returned path after the
/// bench has run; '-' writes the snapshot to stdout.
inline std::string init_metrics(int& argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      path = argv[i] + 10;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  return path;
}

/// Writes the process metrics registry (both views) as one JSON document.
/// No-op when `path` is empty.
inline void write_metrics_json(const std::string& path) {
  if (path.empty()) return;
  const std::string snapshot = obs::snapshot_json();
  if (path == "-") {
    std::cout << snapshot << "\n";
    return;
  }
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    std::cerr << "metrics: cannot open " << path << "\n";
    return;
  }
  std::fputs(snapshot.c_str(), out);
  std::fclose(out);
  std::cout << "[metrics] wrote snapshot to " << path << "\n";
}

/// Machine-readable bench results: `--bench-json=PATH` (stripped from argv
/// like --store, so google-benchmark never sees it) collects one row per
/// measured configuration — name, iteration count, and named counters (time
/// in ns, carbon in grams, whatever the bench reports) — and writes them as
/// one JSON document. CI uploads these as artifacts so perf and carbon
/// numbers are diffable across commits without scraping console output.
class BenchJsonWriter {
 public:
  BenchJsonWriter() = default;
  explicit BenchJsonWriter(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] bool enabled() const noexcept { return !path_.empty(); }

  void add_row(std::string name, std::uint64_t iterations,
               std::vector<std::pair<std::string, double>> counters) {
    rows_.push_back({std::move(name), iterations, std::move(counters)});
  }

  /// Writes all collected rows. Idempotent; a disabled writer is a no-op.
  void write() const {
    if (!enabled()) return;
    std::FILE* out = std::fopen(path_.c_str(), "wb");
    if (out == nullptr) {
      std::cerr << "bench-json: cannot open " << path_ << "\n";
      return;
    }
    std::fputs("{\"benchmarks\": [", out);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      std::fprintf(out, "%s\n  {\"name\": \"%s\", \"iterations\": %llu",
                   i == 0 ? "" : ",", row.name.c_str(),
                   static_cast<unsigned long long>(row.iterations));
      for (const auto& [key, value] : row.counters) {
        std::fprintf(out, ", \"%s\": %.17g", key.c_str(), value);
      }
      std::fputs("}", out);
    }
    std::fputs(rows_.empty() ? "]}\n" : "\n]}\n", out);
    std::fclose(out);
    std::cout << "[bench-json] wrote " << rows_.size() << " rows to " << path_ << "\n";
  }

 private:
  struct Row {
    std::string name;
    std::uint64_t iterations = 0;
    std::vector<std::pair<std::string, double>> counters;
  };
  std::string path_;
  std::vector<Row> rows_;
};

/// Parses and removes `--bench-json=PATH` from argv (same contract as
/// init_store). Returns a disabled writer when the flag is absent.
inline BenchJsonWriter init_bench_json(int& argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--bench-json=", 13) == 0) {
      path = argv[i] + 13;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      --i;
    }
  }
  return BenchJsonWriter(std::move(path));
}

/// The four evaluation policies in the paper's order (Section 6.1.3).
inline std::vector<core::PolicyConfig> evaluation_policies() {
  return {core::PolicyConfig::latency_aware(), core::PolicyConfig::energy_aware(),
          core::PolicyConfig::intensity_aware(), core::PolicyConfig::carbon_edge()};
}

/// Standard CDN simulation config (Section 6.3 setting): year-long,
/// 3-hour epochs, 20 ms RTT limit, mixed GPU inference workload.
inline core::SimulationConfig cdn_config(std::uint64_t seed = 42) {
  core::SimulationConfig config;
  config.epochs = carbon::kHoursPerYear / 3;
  config.epoch_hours = 3.0;
  config.workload.arrivals_per_site = 0.25;
  config.workload.mean_lifetime_epochs = 16.0;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.latency_limit_rtt_ms = 20.0;
  config.workload.seed = seed;
  return config;
}

/// Regional testbed config (Section 6.2): one long-lived app per site for a
/// 24-hour day.
inline core::SimulationConfig testbed_config(sim::ModelType model) {
  core::SimulationConfig config;
  config.epochs = 24;
  config.workload.arrivals_per_site = 0.0;
  config.workload.initial_per_site = 1;
  config.workload.model_weights = {};
  config.workload.model_weights[static_cast<std::size_t>(model)] = 1.0;
  config.workload.latency_limit_rtt_ms = 25.0;
  return config;
}

}  // namespace carbonedge::bench
