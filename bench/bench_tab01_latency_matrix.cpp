// Table 1: pairwise one-way network latency (ms) within Florida and within
// Central Europe. Paper: Florida pairs 1.86-7.2 ms; Central EU 3.99-16.2 ms.
//
// Pure geometry — there are no simulation cells to hand to the
// ScenarioRunner, so this bench is not grid-dispatched; the two region
// tables are built concurrently on the shared pool and printed in order.
#include "bench_util.hpp"

#include "geo/latency.hpp"
#include "geo/region.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

using namespace carbonedge;

namespace {

struct RegionReport {
  util::Table table{{"Location"}};
  std::string takeaway;
};

RegionReport build_report(const geo::Region& region, const char* table_id) {
  const auto cities = region.resolve();
  const geo::LatencyModel model;
  std::vector<std::string> header = {"Location"};
  for (std::size_t j = 1; j < cities.size(); ++j) header.push_back(cities[j].name);
  RegionReport report;
  report.table = util::Table(header);
  report.table.set_title(std::string(table_id) + ": " + region.name + " one-way latency (ms)");
  double lo = 1e18;
  double hi = 0.0;
  for (std::size_t i = 0; i + 1 < cities.size(); ++i) {
    std::vector<std::string> row = {cities[i].name};
    for (std::size_t j = 1; j < cities.size(); ++j) {
      if (j <= i) {
        row.push_back("-");
        continue;
      }
      const double ms = model.one_way_ms(cities[i], cities[j]);
      lo = std::min(lo, ms);
      hi = std::max(hi, ms);
      row.push_back(util::format_fixed(ms, 2));
    }
    report.table.add_row(std::move(row));
  }
  report.takeaway = region.name + " one-way range: " + util::format_fixed(lo, 2) + " - " +
                    util::format_fixed(hi, 2) +
                    " ms (paper: 1.86-7.2 Florida, 3.99-16.2 Central EU)";
  return report;
}

}  // namespace

int main() {
  bench::print_header("Table 1", "One-way network latency within mesoscale regions");

  const std::vector<std::pair<geo::Region, const char*>> regions = {
      {geo::florida_region(), "Table 1a"}, {geo::central_eu_region(), "Table 1b"}};
  std::vector<RegionReport> reports(regions.size());
  util::parallel_for(
      util::global_pool(), 0, regions.size(),
      [&](std::size_t i) { reports[i] = build_report(regions[i].first, regions[i].second); },
      /*chunk=*/1);
  for (const RegionReport& report : reports) {
    report.table.print(std::cout);
    bench::print_takeaway(report.takeaway);
  }
  return 0;
}
