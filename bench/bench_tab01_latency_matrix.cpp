// Table 1: pairwise one-way network latency (ms) within Florida and within
// Central Europe. Paper: Florida pairs 1.86-7.2 ms; Central EU 3.99-16.2 ms.
#include "bench_util.hpp"

#include "geo/latency.hpp"

using namespace carbonedge;

namespace {

void report(const geo::Region& region, const char* table_id) {
  const auto cities = region.resolve();
  const geo::LatencyModel model;
  std::vector<std::string> header = {"Location"};
  for (std::size_t j = 1; j < cities.size(); ++j) header.push_back(cities[j].name);
  util::Table table(header);
  table.set_title(std::string(table_id) + ": " + region.name + " one-way latency (ms)");
  double lo = 1e18;
  double hi = 0.0;
  for (std::size_t i = 0; i + 1 < cities.size(); ++i) {
    std::vector<std::string> row = {cities[i].name};
    for (std::size_t j = 1; j < cities.size(); ++j) {
      if (j <= i) {
        row.push_back("-");
        continue;
      }
      const double ms = model.one_way_ms(cities[i], cities[j]);
      lo = std::min(lo, ms);
      hi = std::max(hi, ms);
      row.push_back(util::format_fixed(ms, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  bench::print_takeaway(region.name + " one-way range: " + util::format_fixed(lo, 2) + " - " +
                        util::format_fixed(hi, 2) +
                        " ms (paper: 1.86-7.2 Florida, 3.99-16.2 Central EU)");
}

}  // namespace

int main() {
  bench::print_header("Table 1", "One-way network latency within mesoscale regions");
  report(geo::florida_region(), "Table 1a");
  report(geo::central_eu_region(), "Table 1b");
  return 0;
}
