// Figure 13: effect of seasonality — monthly carbon savings and latency
// increases for the US/EU CDNs (a, b), monthly zone intensities for Paris /
// Oslo / Vienna / Zagreb (c), and monthly application placements at those
// sites under CarbonEdge with monthly re-optimization (d). Paper: savings
// vary by up to ~10% across months in Europe; per-site placement counts
// swing by up to ~3x.
#include <algorithm>

#include "bench_util.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 13", "Effect of seasonality");

  // (a)/(b): monthly savings and latency increases, both continents.
  util::Table monthly({"Month", "US saving", "US dRTT", "EU saving", "EU dRTT"});
  monthly.set_title("Figure 13a/b: monthly carbon savings and latency increases");

  struct MonthRow {
    std::vector<std::string> cells;
  };
  std::vector<std::vector<std::string>> cells(carbon::kMonthsPerYear);
  for (std::uint32_t m = 0; m < carbon::kMonthsPerYear; ++m) {
    cells[m].push_back(std::string(carbon::month_name(m)));
  }

  for (const geo::Continent continent :
       {geo::Continent::kNorthAmerica, geo::Continent::kEurope}) {
    const geo::Region region = geo::cdn_region(continent, 30);
    const auto service = bench::make_service(region);
    core::EdgeSimulation simulation(
        sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
    const auto results =
        core::run_policies(simulation, bench::cdn_config(),
                           {core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()});
    for (std::uint32_t m = 0; m < carbon::kMonthsPerYear; ++m) {
      // Epoch window of month m (3h epochs).
      const std::size_t first = carbon::month_start_hour(m) / 3;
      const std::size_t last = first + carbon::days_in_month(m) * 8;
      double base = 0.0;
      double ce = 0.0;
      double base_rtt = 0.0;
      double base_rps = 0.0;
      double ce_rtt = 0.0;
      double ce_rps = 0.0;
      for (std::size_t e = first; e < last && e < results[0].telemetry.size(); ++e) {
        base += results[0].telemetry.epochs()[e].carbon_g();
        ce += results[1].telemetry.epochs()[e].carbon_g();
        base_rtt += results[0].telemetry.epochs()[e].rtt_weighted_sum_ms;
        base_rps += results[0].telemetry.epochs()[e].rps_total;
        ce_rtt += results[1].telemetry.epochs()[e].rtt_weighted_sum_ms;
        ce_rps += results[1].telemetry.epochs()[e].rps_total;
      }
      const double saving = base > 0.0 ? (base - ce) / base : 0.0;
      const double drtt =
          (ce_rps > 0.0 ? ce_rtt / ce_rps : 0.0) - (base_rps > 0.0 ? base_rtt / base_rps : 0.0);
      cells[m].push_back(util::format_percent(saving));
      cells[m].push_back(util::format_fixed(drtt, 1));
    }
  }
  for (auto& row : cells) monthly.add_row(std::move(row));
  monthly.print(std::cout);

  // (c)/(d): four named EU zones — monthly intensity and CarbonEdge
  // placements with monthly re-optimization. Make sure the spotlight zones
  // of the paper's Figure 13c/d are part of the deployment.
  geo::Region eu = geo::cdn_region(geo::Continent::kEurope, 30);
  const auto& db = geo::CityDatabase::builtin();
  for (const char* name : {"Paris", "Oslo", "Vienna", "Zagreb"}) {
    const geo::CityId id = db.require(name).id;
    if (std::find(eu.cities.begin(), eu.cities.end(), id) == eu.cities.end()) {
      eu.cities.push_back(id);
    }
  }
  const auto service = bench::make_service(eu);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(eu, 1, sim::DeviceType::kA2), service);
  core::SimulationConfig config = bench::cdn_config();
  config.policy = core::PolicyConfig::carbon_edge();
  config.reoptimize_every = 31 * 8;  // ~monthly migration (3h epochs)
  const core::SimulationResult result = simulation.run(config);

  const std::vector<std::string> spotlight = {"Paris", "Oslo", "Vienna", "Zagreb"};
  const auto cities = simulation.pristine_cluster().cities();
  util::Table zone_ci({"Month", "Paris", "Oslo", "Vienna", "Zagreb"});
  zone_ci.set_title("Figure 13c: monthly carbon intensity (g CO2eq/kWh)");
  util::Table zone_apps({"Month", "Paris", "Oslo", "Vienna", "Zagreb"});
  zone_apps.set_title("Figure 13d: mean applications hosted (CarbonEdge, monthly migration)");
  for (std::uint32_t m = 0; m < carbon::kMonthsPerYear; ++m) {
    std::vector<double> ci_row;
    std::vector<double> app_row;
    const std::size_t first = carbon::month_start_hour(m) / 3;
    const std::size_t last = first + carbon::days_in_month(m) * 8;
    const auto apps = result.telemetry.apps_by_site(first, last);
    for (const std::string& name : spotlight) {
      ci_row.push_back(service.trace(name).monthly_mean(m));
      double hosted = 0.0;
      for (std::size_t s = 0; s < cities.size(); ++s) {
        if (cities[s].name == name && s < apps.size()) hosted = apps[s];
      }
      app_row.push_back(hosted);
    }
    zone_ci.add_row(std::string(carbon::month_name(m)), ci_row, 0);
    zone_apps.add_row(std::string(carbon::month_name(m)), app_row, 1);
  }
  zone_ci.print(std::cout);
  zone_apps.print(std::cout);
  bench::print_takeaway(
      "Monthly intensity shifts re-rank zones and re-route applications across seasons "
      "(paper: up to 3x swings in per-site assignments; ~10% savings variation in Europe).");
  return 0;
}
