// Figure 13: effect of seasonality — monthly carbon savings and latency
// increases for the US/EU CDNs (a, b), monthly zone intensities for Paris /
// Oslo / Vienna / Zagreb (c), and monthly application placements at those
// sites under CarbonEdge with monthly re-optimization (d). Paper: savings
// vary by up to ~10% across months in Europe; per-site placement counts
// swing by up to ~3x.
//
// Expressed as one ScenarioRunner dispatch: the four continent x policy
// year-long cells of (a)/(b) plus the monthly-migration cell of (c)/(d) all
// run concurrently. Re-optimization for (d) is aligned with calendar months
// (reoptimize_monthly) — the former fixed 31*8-epoch cadence drifted off the
// month_start_hour reporting windows from February onward.
#include <algorithm>

#include "bench_util.hpp"
#include "carbon/caltime.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/city.hpp"
#include "geo/coord.hpp"
#include "geo/region.hpp"
#include "geo/site.hpp"
#include "runner/scenario_grid.hpp"

#include "runner/scenario_runner.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main(int argc, char** argv) {
  bench::print_header("Figure 13", "Effect of seasonality");
  // --store: the five year-long cells resume from the persistent store.
  const auto sweep_store = bench::init_store(argc, argv);
  const std::string metrics_path = bench::init_metrics(argc, argv);

  const std::vector<core::PolicyConfig> policies = {core::PolicyConfig::latency_aware(),
                                                    core::PolicyConfig::carbon_edge()};

  // (c)/(d) deployment: the EU CDN plus the paper's spotlight zones.
  geo::Region eu = geo::cdn_region(geo::Continent::kEurope, 30);
  const auto& db = geo::CityDatabase::builtin();
  for (const char* name : {"Paris", "Oslo", "Vienna", "Zagreb"}) {
    const geo::CityId id = db.require(name).id;
    if (std::find(eu.cities.begin(), eu.cities.end(), id) == eu.cities.end()) {
      eu.cities.push_back(id);
    }
  }

  // One scenario list: continent x policy for (a)/(b), then the CarbonEdge
  // monthly-migration cell for (d).
  runner::ScenarioGrid monthly_grid(bench::apply_smoke_epochs(bench::cdn_config()));
  monthly_grid
      .with_regions({geo::cdn_region(geo::Continent::kNorthAmerica, 30),
                     geo::cdn_region(geo::Continent::kEurope, 30)})
      .with_policies(policies);
  std::vector<runner::Scenario> scenarios = monthly_grid.expand();

  core::SimulationConfig migration_config = bench::apply_smoke_epochs(bench::cdn_config());
  migration_config.policy = core::PolicyConfig::carbon_edge();
  migration_config.reoptimize_monthly = true;  // calendar-aligned migration
  runner::ScenarioGrid migration_grid(migration_config);
  migration_grid.with_regions({eu});
  const std::size_t migration_cell = scenarios.size();
  for (runner::Scenario& scenario : migration_grid.expand()) {
    scenario.index = scenarios.size();
    scenarios.push_back(std::move(scenario));
  }
  const auto outcomes =
      runner::ScenarioRunner(runner::ScenarioRunnerOptions{.threads = 0,
                                                           .sweep_store = sweep_store})
          .run(std::move(scenarios));

  // (a)/(b): monthly savings and latency increases, both continents.
  util::Table monthly({"Month", "US saving", "US dRTT", "EU saving", "EU dRTT"});
  monthly.set_title("Figure 13a/b: monthly carbon savings and latency increases");

  std::vector<std::vector<std::string>> cells(carbon::kMonthsPerYear);
  for (std::uint32_t m = 0; m < carbon::kMonthsPerYear; ++m) {
    cells[m].push_back(std::string(carbon::month_name(m)));
  }

  for (std::size_t c = 0; c < 2; ++c) {
    const core::SimulationResult& base = outcomes[c * policies.size()].result;
    const core::SimulationResult& ce = outcomes[c * policies.size() + 1].result;
    for (std::uint32_t m = 0; m < carbon::kMonthsPerYear; ++m) {
      // Epoch window of month m (3h epochs).
      const std::size_t first = carbon::month_start_hour(m) / 3;
      const std::size_t last = first + carbon::days_in_month(m) * 8;
      double base_g = 0.0;
      double ce_g = 0.0;
      double base_rtt = 0.0;
      double base_rps = 0.0;
      double ce_rtt = 0.0;
      double ce_rps = 0.0;
      for (std::size_t e = first; e < last && e < base.telemetry.size(); ++e) {
        base_g += base.telemetry.epochs()[e].carbon_g();
        ce_g += ce.telemetry.epochs()[e].carbon_g();
        base_rtt += base.telemetry.epochs()[e].rtt_weighted_sum_ms;
        base_rps += base.telemetry.epochs()[e].rps_total;
        ce_rtt += ce.telemetry.epochs()[e].rtt_weighted_sum_ms;
        ce_rps += ce.telemetry.epochs()[e].rps_total;
      }
      const double saving = base_g > 0.0 ? (base_g - ce_g) / base_g : 0.0;
      const double drtt =
          (ce_rps > 0.0 ? ce_rtt / ce_rps : 0.0) - (base_rps > 0.0 ? base_rtt / base_rps : 0.0);
      cells[m].push_back(util::format_percent(saving));
      cells[m].push_back(util::format_fixed(drtt, 1));
    }
  }
  for (auto& row : cells) monthly.add_row(std::move(row));
  monthly.print(std::cout);

  // (c)/(d): four named EU zones — monthly intensity and CarbonEdge
  // placements with calendar-aligned monthly re-optimization. The service is
  // rebuilt here for the intensity column; the TraceCache hands back the
  // very traces the sweep ran against, so no re-synthesis happens.
  const core::SimulationResult& result = outcomes[migration_cell].result;
  const auto service = bench::make_service(eu);

  const std::vector<std::string> spotlight = {"Paris", "Oslo", "Vienna", "Zagreb"};
  const auto cities = eu.resolve();
  util::Table zone_ci({"Month", "Paris", "Oslo", "Vienna", "Zagreb"});
  zone_ci.set_title("Figure 13c: monthly carbon intensity (g CO2eq/kWh)");
  util::Table zone_apps({"Month", "Paris", "Oslo", "Vienna", "Zagreb"});
  zone_apps.set_title("Figure 13d: mean applications hosted (CarbonEdge, monthly migration)");
  for (std::uint32_t m = 0; m < carbon::kMonthsPerYear; ++m) {
    std::vector<double> ci_row;
    std::vector<double> app_row;
    const std::size_t first = carbon::month_start_hour(m) / 3;
    const std::size_t last = first + carbon::days_in_month(m) * 8;
    const auto apps = result.telemetry.apps_by_site(first, last);
    for (const std::string& name : spotlight) {
      ci_row.push_back(service.trace(name).monthly_mean(m));
      double hosted = 0.0;
      for (std::size_t s = 0; s < cities.size(); ++s) {
        if (cities[s].name == name && s < apps.size()) hosted = apps[s];
      }
      app_row.push_back(hosted);
    }
    zone_ci.add_row(std::string(carbon::month_name(m)), ci_row, 0);
    zone_apps.add_row(std::string(carbon::month_name(m)), app_row, 1);
  }
  zone_ci.print(std::cout);
  zone_apps.print(std::cout);
  bench::print_takeaway(
      "Monthly intensity shifts re-rank zones and re-route applications across seasons "
      "(paper: up to 3x swings in per-site assignments; ~10% savings variation in Europe).");
  bench::print_store_stats(sweep_store);
  bench::write_metrics_json(metrics_path);
  return 0;
}
