// Figure 9: end-to-end response time per Florida site under Latency-aware
// vs CarbonEdge. Paper: increases stay below ~10.1 ms with a mean of
// ~6.61 ms — bounded because mesoscale distances are short.
#include "bench_util.hpp"
#include "core/placement_service.hpp"
#include "core/policy.hpp"
#include "core/problem.hpp"
#include "core/simulation.hpp"
#include "geo/region.hpp"
#include "sim/app_model.hpp"
#include "sim/datacenter.hpp"
#include "sim/device.hpp"
#include "sim/server.hpp"
#include "sim/workload.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 9", "End-to-end response times across Florida sites");

  const geo::Region region = geo::florida_region();
  const auto service = bench::make_service(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kXeonCpu), service);

  const auto cities = simulation.pristine_cluster().cities();
  const auto& latency = simulation.latency();

  // Under Latency-aware each app stays at its origin: response = service
  // time only. Under CarbonEdge apps move to the greenest feasible zone;
  // response adds the origin->host RTT. One-batch placement per policy
  // recovers the per-origin detail the figure plots.
  struct PerSite {
    double latency_aware_ms = 0.0;
    double carbon_edge_ms = 0.0;
  };
  std::vector<PerSite> per_site(cities.size());

  for (const core::PolicyConfig policy :
       {core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()}) {
    auto cluster = simulation.pristine_cluster();
    core::PlacementService placement(policy);
    core::PlacementInput input;
    input.cluster = &cluster;
    input.latency = &latency;
    input.carbon = &service;
    input.now = 12;
    std::vector<sim::Application> apps;
    for (std::size_t s = 0; s < cities.size(); ++s) {
      sim::Application app;
      app.id = s;
      app.model = sim::ModelType::kSciCpu;
      app.origin_site = s;
      app.rps = 5.0;
      app.latency_limit_rtt_ms = 25.0;
      apps.push_back(app);
    }
    const core::PlacementResult result = placement.place(input, apps);
    for (const core::PlacementDecision& d : result.decisions) {
      const auto origin = static_cast<std::size_t>(d.app);
      sim::EdgeServer& host = cluster.sites()[d.site].servers()[0];
      const double response = d.rtt_ms + host.mean_service_ms(sim::ModelType::kSciCpu);
      if (policy.kind == core::PolicyKind::kLatencyAware) {
        per_site[origin].latency_aware_ms = response;
      } else {
        per_site[origin].carbon_edge_ms = response;
      }
    }
  }

  util::Table table({"Origin site", "Latency-aware (ms)", "CarbonEdge (ms)", "Increase (ms)"});
  table.set_title("Figure 9: response time per origin site");
  double total_increase = 0.0;
  double max_increase = 0.0;
  for (std::size_t s = 0; s < cities.size(); ++s) {
    const double inc = per_site[s].carbon_edge_ms - per_site[s].latency_aware_ms;
    total_increase += inc;
    max_increase = std::max(max_increase, inc);
    table.add_row(cities[s].name,
                  {per_site[s].latency_aware_ms, per_site[s].carbon_edge_ms, inc}, 2);
  }
  table.print(std::cout);
  bench::print_takeaway("Mean increase " +
                        util::format_fixed(total_increase / cities.size(), 2) +
                        " ms, max " + util::format_fixed(max_increase, 2) +
                        " ms (paper: mean 6.61 ms, max <10.1 ms).");
  return 0;
}
