// Figure 11: year-long CDN-scale evaluation for the US and Europe — carbon
// savings vs Latency-aware (a), round-trip latency increases (b), and the
// CDF of load-weighted carbon intensity (c). Paper: 49.5% (US) and 67.8%
// (EU) savings at <11 ms RTT increase; CarbonEdge shifts load mass toward
// low-intensity zones; isolated sites (e.g. Salt Lake City) keep their load.
//
// Expressed as a ScenarioGrid (continent x policy, four year-long cells)
// dispatched across all cores by the ScenarioRunner; tables are rebuilt from
// the row-major outcome order, byte-identical to the former serial loops.
#include "bench_util.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/coord.hpp"
#include "geo/region.hpp"
#include "runner/scenario_grid.hpp"

#include "runner/scenario_runner.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main(int argc, char** argv) {
  bench::print_header("Figure 11", "Year-long CDN evaluation (US and Europe)");
  // --store: resume the four year-long cells from the persistent artifact
  // store (and publish fresh ones into it); traces load from its L2 tier.
  const auto sweep_store = bench::init_store(argc, argv);
  const std::string metrics_path = bench::init_metrics(argc, argv);

  const std::vector<geo::Continent> continents = {geo::Continent::kNorthAmerica,
                                                  geo::Continent::kEurope};
  const std::vector<core::PolicyConfig> policies = {core::PolicyConfig::latency_aware(),
                                                    core::PolicyConfig::carbon_edge()};
  std::vector<geo::Region> regions;
  for (const geo::Continent continent : continents) {
    regions.push_back(geo::cdn_region(continent, 40));
  }

  runner::ScenarioGrid grid(bench::apply_smoke_epochs(bench::cdn_config()));
  grid.with_regions(regions).with_policies(policies);
  const auto outcomes =
      runner::ScenarioRunner(runner::ScenarioRunnerOptions{.threads = 0,
                                                           .sweep_store = sweep_store})
          .run(grid);

  util::Table summary({"Continent", "Sites", "Latency-aware (kg)", "CarbonEdge (kg)",
                       "Saving", "dRTT (ms)"});
  summary.set_title("Figure 11a/b: savings and latency increases (20 ms RTT limit)");

  struct LoadCdf {
    std::string name;
    util::EmpiricalCdf baseline;
    util::EmpiricalCdf carbonedge;
  };
  std::vector<LoadCdf> cdfs;

  for (std::size_t c = 0; c < continents.size(); ++c) {
    // Row-major expansion with policies innermost: [LA, CE] per continent.
    const core::SimulationResult& base = outcomes[c * policies.size()].result;
    const core::SimulationResult& ce = outcomes[c * policies.size() + 1].result;
    const geo::Region& region = regions[c];
    summary.add_row({continents[c] == geo::Continent::kNorthAmerica ? "US" : "Europe",
                     std::to_string(region.cities.size()),
                     util::format_fixed(base.telemetry.total_carbon_kg(), 1),
                     util::format_fixed(ce.telemetry.total_carbon_kg(), 1),
                     util::format_percent(core::carbon_saving(base, ce)),
                     util::format_fixed(core::latency_increase_ms(base, ce), 1)});
    cdfs.push_back({continents[c] == geo::Continent::kNorthAmerica ? "US" : "EU",
                    util::EmpiricalCdf(base.telemetry.load_intensity_sample()),
                    util::EmpiricalCdf(ce.telemetry.load_intensity_sample())});

    // Per-site load retention: sites far from greener neighbors keep their
    // load (the paper's Salt Lake City example). Count such sites and name
    // the largest one.
    const auto base_apps = base.telemetry.apps_by_site(0, base.telemetry.size());
    const auto ce_apps = ce.telemetry.apps_by_site(0, ce.telemetry.size());
    const auto cities = region.resolve();
    std::size_t retained = 0;
    std::string example;
    for (std::size_t s = 0; s < cities.size(); ++s) {
      if (base_apps[s] > 0.0 && ce_apps[s] >= 0.9 * base_apps[s]) {
        ++retained;
        if (example.empty()) example = cities[s].name;
      }
    }
    bench::print_takeaway(std::to_string(retained) + " of " + std::to_string(cities.size()) +
                          " sites keep >=90% of their baseline load" +
                          (example.empty() ? "" : " (e.g. " + example + ")") +
                          " - sites without greener neighbors do not offload (paper: Salt "
                          "Lake City).");
  }
  summary.print(std::cout);

  util::Table cdf_table({"Intensity (g/kWh)", "LA (US)", "CE (US)", "LA (EU)", "CE (EU)"});
  cdf_table.set_title("Figure 11c: CDF of load-weighted carbon intensity");
  for (double x = 0.0; x <= 800.0; x += 100.0) {
    cdf_table.add_row(util::format_fixed(x, 0),
                      {cdfs[0].baseline.at(x), cdfs[0].carbonedge.at(x), cdfs[1].baseline.at(x),
                       cdfs[1].carbonedge.at(x)},
                      2);
  }
  cdf_table.print(std::cout);
  bench::print_takeaway(
      "CarbonEdge shifts the load distribution toward low-carbon zones; Europe saves more "
      "than the US (paper: 67.8% vs 49.5%).");
  bench::print_store_stats(sweep_store);
  bench::write_metrics_json(metrics_path);
  return 0;
}
