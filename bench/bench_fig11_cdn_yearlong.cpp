// Figure 11: year-long CDN-scale evaluation for the US and Europe — carbon
// savings vs Latency-aware (a), round-trip latency increases (b), and the
// CDF of load-weighted carbon intensity (c). Paper: 49.5% (US) and 67.8%
// (EU) savings at <11 ms RTT increase; CarbonEdge shifts load mass toward
// low-intensity zones; isolated sites (e.g. Salt Lake City) keep their load.
#include "bench_util.hpp"

#include "util/stats.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 11", "Year-long CDN evaluation (US and Europe)");

  util::Table summary({"Continent", "Sites", "Latency-aware (kg)", "CarbonEdge (kg)",
                       "Saving", "dRTT (ms)"});
  summary.set_title("Figure 11a/b: savings and latency increases (20 ms RTT limit)");

  struct LoadCdf {
    std::string name;
    util::EmpiricalCdf baseline;
    util::EmpiricalCdf carbonedge;
  };
  std::vector<LoadCdf> cdfs;

  for (const geo::Continent continent :
       {geo::Continent::kNorthAmerica, geo::Continent::kEurope}) {
    const geo::Region region = geo::cdn_region(continent, 40);
    const auto service = bench::make_service(region);
    core::EdgeSimulation simulation(
        sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);
    const auto results =
        core::run_policies(simulation, bench::cdn_config(),
                           {core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()});
    summary.add_row({continent == geo::Continent::kNorthAmerica ? "US" : "Europe",
                     std::to_string(region.cities.size()),
                     util::format_fixed(results[0].telemetry.total_carbon_kg(), 1),
                     util::format_fixed(results[1].telemetry.total_carbon_kg(), 1),
                     util::format_percent(core::carbon_saving(results[0], results[1])),
                     util::format_fixed(core::latency_increase_ms(results[0], results[1]), 1)});
    cdfs.push_back({continent == geo::Continent::kNorthAmerica ? "US" : "EU",
                    util::EmpiricalCdf(results[0].telemetry.load_intensity_sample()),
                    util::EmpiricalCdf(results[1].telemetry.load_intensity_sample())});

    // Per-site load retention: sites far from greener neighbors keep their
    // load (the paper's Salt Lake City example). Count such sites and name
    // the largest one.
    const auto base_apps = results[0].telemetry.apps_by_site(0, results[0].telemetry.size());
    const auto ce_apps = results[1].telemetry.apps_by_site(0, results[1].telemetry.size());
    const auto cities = simulation.pristine_cluster().cities();
    std::size_t retained = 0;
    std::string example;
    for (std::size_t s = 0; s < cities.size(); ++s) {
      if (base_apps[s] > 0.0 && ce_apps[s] >= 0.9 * base_apps[s]) {
        ++retained;
        if (example.empty()) example = cities[s].name;
      }
    }
    bench::print_takeaway(std::to_string(retained) + " of " + std::to_string(cities.size()) +
                          " sites keep >=90% of their baseline load" +
                          (example.empty() ? "" : " (e.g. " + example + ")") +
                          " - sites without greener neighbors do not offload (paper: Salt "
                          "Lake City).");
  }
  summary.print(std::cout);

  util::Table cdf_table({"Intensity (g/kWh)", "LA (US)", "CE (US)", "LA (EU)", "CE (EU)"});
  cdf_table.set_title("Figure 11c: CDF of load-weighted carbon intensity");
  for (double x = 0.0; x <= 800.0; x += 100.0) {
    cdf_table.add_row(util::format_fixed(x, 0),
                      {cdfs[0].baseline.at(x), cdfs[0].carbonedge.at(x), cdfs[1].baseline.at(x),
                       cdfs[1].carbonedge.at(x)},
                      2);
  }
  cdf_table.print(std::cout);
  bench::print_takeaway(
      "CarbonEdge shifts the load distribution toward low-carbon zones; Europe saves more "
      "than the US (paper: 67.8% vs 49.5%).");
  return 0;
}
