// Figure 16: the carbon-energy trade-off (Eq. 8) — sweep alpha from 0
// (pure CarbonEdge) to 1 (pure Energy-aware) under low and high cluster
// utilization. Paper: a knee exists where most carbon savings are retained
// at far lower energy (alpha=0.1 keeps 97.5% of savings while cutting
// energy 67% in the low-utilization case).
//
// Expressed as one ScenarioGrid over the arrival-rate axis (low/high
// utilization) x 11 multi-objective policies, dispatched in parallel by the
// ScenarioRunner.
#include <algorithm>

#include "bench_util.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/region.hpp"
#include "runner/scenario_grid.hpp"

#include "runner/scenario_runner.hpp"
#include "sim/device.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 16", "Carbon-energy trade-off (Eq. 8 alpha sweep)");

  std::vector<double> alphas;
  std::vector<core::PolicyConfig> policies;
  for (double alpha = 0.0; alpha <= 1.001; alpha += 0.1) {
    alphas.push_back(alpha);
    policies.push_back(core::PolicyConfig::multi_objective(alpha));
  }
  const std::vector<double> arrival_rates = {0.8, 4.0};  // low / high utilization

  core::SimulationConfig config;
  config.epochs = 24;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.mean_lifetime_epochs = 12.0;
  config.workload.latency_limit_rtt_ms = 25.0;

  runner::ScenarioGrid grid(bench::apply_smoke_epochs(config));
  grid.with_regions({geo::central_eu_region()})
      .with_device_mixes({{"Hetero.",
                           {sim::DeviceType::kOrinNano, sim::DeviceType::kA2,
                            sim::DeviceType::kGtx1080},
                           3}})
      .with_policies(policies)
      .with_arrival_rates(arrival_rates);
  const auto outcomes = runner::ScenarioRunner().run(grid);

  // Row-major order: policy (outer), arrival rate (inner).
  for (std::size_t u = 0; u < arrival_rates.size(); ++u) {
    const bool high_utilization = u == 1;
    util::Table table({"alpha", "Carbon (g)", "Energy (Wh)", "Carbon kept", "Energy vs a=0"});
    table.set_title(std::string("Figure 16") + (high_utilization ? "b: high" : "a: low") +
                    " utilization");
    double carbon_alpha0 = 0.0;
    double energy_alpha0 = 0.0;
    double carbon_alpha1 = 0.0;
    std::vector<std::array<double, 3>> rows;
    for (std::size_t p = 0; p < alphas.size(); ++p) {
      const core::SimulationResult& result = outcomes[p * arrival_rates.size() + u].result;
      const double alpha = alphas[p];
      const double carbon = result.telemetry.total_carbon_g();
      const double energy = result.telemetry.total_energy_wh();
      if (alpha < 0.05) {
        carbon_alpha0 = carbon;
        energy_alpha0 = energy;
      }
      if (alpha > 0.95) carbon_alpha1 = carbon;
      rows.push_back({alpha, carbon, energy});
    }
    for (const auto& [alpha, carbon, energy] : rows) {
      const double denom = std::max(carbon_alpha1 - carbon_alpha0, 1e-9);
      const double kept = std::clamp((carbon_alpha1 - carbon) / denom, 0.0, 1.5);
      table.add_row({util::format_fixed(alpha, 1), util::format_fixed(carbon, 1),
                     util::format_fixed(energy, 1), util::format_percent(kept, 0),
                     util::format_percent(energy / std::max(energy_alpha0, 1e-9), 0)});
    }
    table.print(std::cout);
  }
  bench::print_takeaway(
      "Carbon falls and energy rises as alpha -> 0; small alpha retains most carbon "
      "savings at a fraction of the energy premium (paper Fig 16).");
  return 0;
}
