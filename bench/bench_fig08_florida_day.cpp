// Figure 8: a 24-hour Florida regional deployment of the CPU-based (Sci)
// application — per-zone carbon intensity (a), per-zone emissions under
// Latency-aware (b), and under CarbonEdge (c). Expected shape: Latency-aware
// emissions mirror each zone's own intensity; CarbonEdge routes everything
// through the greenest zone (Miami) and flattens emissions.
#include "bench_util.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/region.hpp"
#include "geo/site.hpp"
#include "sim/app_model.hpp"
#include "sim/datacenter.hpp"
#include "sim/device.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 8", "Carbon intensity and emissions across Florida (24h)");

  const geo::Region region = geo::florida_region();
  const auto service = bench::make_service(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kXeonCpu), service);
  const core::SimulationConfig base = bench::testbed_config(sim::ModelType::kSciCpu);

  const auto cities = simulation.pristine_cluster().cities();
  std::vector<std::string> header = {"Hour"};
  for (const geo::City& c : cities) header.push_back(c.name);

  // (a) Carbon intensity.
  util::Table intensity(header);
  intensity.set_title("Figure 8a: carbon intensity (g CO2eq/kWh)");
  for (std::uint32_t h = 0; h < 24; h += 2) {
    std::vector<double> row;
    for (const geo::City& c : cities) row.push_back(service.intensity(c.name, h));
    intensity.add_row(std::to_string(h) + ":00", row, 0);
  }
  intensity.print(std::cout);

  // (b)/(c) Per-origin-app emissions per epoch under both policies. Each
  // zone's end device contributes one app; we report where its emissions go.
  for (const core::PolicyConfig policy :
       {core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()}) {
    core::SimulationConfig config = base;
    config.policy = policy;
    const core::SimulationResult result = simulation.run(config);
    util::Table emissions(header);
    emissions.set_title(std::string("Figure 8") +
                        (policy.kind == core::PolicyKind::kLatencyAware ? "b" : "c") + ": " +
                        core::describe(policy) + " emissions per site (g CO2eq / epoch)");
    for (std::size_t e = 0; e < result.telemetry.size(); e += 2) {
      const auto& record = result.telemetry.epochs()[e];
      std::vector<double> row;
      for (const auto& site : record.sites) row.push_back(site.carbon_g);
      emissions.add_row(std::to_string(e) + ":00", row, 2);
    }
    emissions.print(std::cout);

    const auto apps = result.telemetry.apps_by_site(0, result.telemetry.size());
    std::string placements;
    for (std::size_t s = 0; s < apps.size(); ++s) {
      placements += cities[s].name + "=" + util::format_fixed(apps[s], 1) + " ";
    }
    bench::print_takeaway(core::describe(policy) + " mean apps per site: " + placements);
  }
  bench::print_takeaway(
      "CarbonEdge consolidates all five applications in the greenest zone (paper: Miami), "
      "flattening emissions to the Miami intensity curve.");
  return 0;
}
