// Figure 1: energy mix (a) and four-day carbon-intensity series (b) for
// Ontario (Toronto), California (Los Angeles), New York, and Poland
// (Warsaw). Expected shape: Ontario nuclear/hydro-dominated and very clean;
// Poland coal-dominated and ~an order of magnitude dirtier.
#include "bench_util.hpp"
#include "carbon/caltime.hpp"
#include "carbon/mix.hpp"
#include "carbon/source.hpp"

#include "carbon/synthesizer.hpp"
#include "carbon/trace.hpp"
#include "carbon/zone.hpp"
#include "geo/region.hpp"
#include "geo/site.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 1", "Energy mix and carbon intensity of four regions");

  const geo::Region region = geo::macro_region();
  const auto& catalog = carbon::ZoneCatalog::builtin();
  const carbon::TraceSynthesizer synthesizer;

  // (a) Realized generation shares over the year.
  util::Table mix_table({"Zone", "hydro", "solar", "wind", "nuclear", "fossil", "other"});
  mix_table.set_title("Figure 1a: energy source ratio (realized, year average)");
  std::vector<carbon::CarbonTrace> traces;
  for (const geo::City& city : region.resolve()) {
    traces.push_back(synthesizer.synthesize(catalog.spec_for(city)));
    const carbon::GenerationMix avg = traces.back().average_mix();
    const double fossil = avg.at(carbon::EnergySource::kGas) +
                          avg.at(carbon::EnergySource::kOil) +
                          avg.at(carbon::EnergySource::kCoal);
    const double other = avg.at(carbon::EnergySource::kBiomass);
    mix_table.add_row(city.name + " (" + city.country + ")",
                      {avg.at(carbon::EnergySource::kHydro), avg.at(carbon::EnergySource::kSolar),
                       avg.at(carbon::EnergySource::kWind),
                       avg.at(carbon::EnergySource::kNuclear), fossil, other},
                      3);
  }
  mix_table.print(std::cout);

  // (b) Hourly carbon intensity July 15-18 (paper's window), 6h sampling.
  const carbon::HourIndex start = carbon::month_start_hour(6) + 14 * 24;  // July 15
  util::Table series({"Hour (July 15-18)", "Toronto", "Los Angeles", "New York", "Warsaw"});
  series.set_title("Figure 1b: carbon intensity (g CO2eq/kWh)");
  for (std::uint32_t h = 0; h < 4 * 24; h += 6) {
    std::vector<double> row;
    for (const carbon::CarbonTrace& trace : traces) row.push_back(trace.at(start + h));
    series.add_row("t+" + std::to_string(h) + "h", row, 1);
  }
  series.print(std::cout);

  const double ontario = traces[0].yearly_mean();
  const double poland = traces[3].yearly_mean();
  bench::print_takeaway("Yearly mean: Ontario " + util::format_fixed(ontario, 0) +
                        " vs Poland " + util::format_fixed(poland, 0) + " g/kWh (" +
                        util::format_fixed(poland / ontario, 1) +
                        "x) - large spatial differences exist at macro scales (paper Fig 1).");
  return 0;
}
