// Figure 10: aggregate 24-hour emissions and latency increases for the
// CPU-based Sci application and the GPU-based ResNet50 across Florida and
// Central Europe. Paper: CarbonEdge saves 39.4% (Florida) and 78.7%
// (Central EU); response time rises 6.6 ms and 10.5 ms; the GPU app emits
// far less in absolute terms but sees the same placement decisions.
#include "bench_util.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/region.hpp"
#include "sim/app_model.hpp"
#include "sim/datacenter.hpp"
#include "sim/device.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 10", "Regional totals across applications and policies");

  util::Table table({"Region", "App", "Latency-aware (g)", "CarbonEdge (g)", "Saving",
                     "dRTT (ms)"});
  table.set_title("Figure 10: 24h totals");

  for (const geo::Region& region : {geo::florida_region(), geo::central_eu_region()}) {
    const auto service = bench::make_service(region);
    for (const sim::ModelType model : {sim::ModelType::kSciCpu, sim::ModelType::kResNet50}) {
      const sim::DeviceType device = model == sim::ModelType::kSciCpu
                                         ? sim::DeviceType::kXeonCpu
                                         : sim::DeviceType::kA2;
      core::EdgeSimulation simulation(sim::make_uniform_cluster(region, 1, device), service);
      const auto results =
          core::run_policies(simulation, bench::testbed_config(model),
                             {core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()});
      table.add_row({region.name, std::string(sim::to_string(model)),
                     util::format_fixed(results[0].telemetry.total_carbon_g(), 1),
                     util::format_fixed(results[1].telemetry.total_carbon_g(), 1),
                     util::format_percent(core::carbon_saving(results[0], results[1])),
                     util::format_fixed(core::latency_increase_ms(results[0], results[1]), 2)});
    }
  }
  table.print(std::cout);
  bench::print_takeaway(
      "Savings are region-determined (Central EU >> Florida) and consistent across the CPU "
      "and GPU applications; absolute emissions scale with application power (paper Fig 10).");
  return 0;
}
