// Ablation: temporal vs spatial workload shifting (paper Section 2.2, which
// cites prior findings that spatial shifting "has much more potential...
// there tend to be much larger differences in carbon between locations than
// within any one location over time"). Same batch workload, four modes:
//   * none            — Latency-aware, immediate start
//   * temporal only   — Latency-aware placement, arrivals may defer up to
//                       24 h waiting for a low-intensity hour at the origin
//   * spatial only    — CarbonEdge, immediate start
//   * both            — CarbonEdge + 24 h deferral
#include "bench_util.hpp"

using namespace carbonedge;

namespace {

core::SimulationResult run_mode(core::EdgeSimulation& simulation, bool spatial,
                                std::uint32_t defer_epochs) {
  core::SimulationConfig config;
  config.policy =
      spatial ? core::PolicyConfig::carbon_edge() : core::PolicyConfig::latency_aware();
  config.epochs = 14 * 24;  // two weeks, hourly
  config.workload.arrivals_per_site = 0.5;
  config.workload.mean_lifetime_epochs = 8.0;
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  config.workload.latency_limit_rtt_ms = 25.0;
  config.workload.max_defer_epochs = defer_epochs;
  config.forecast_horizon_hours = 6;
  return simulation.run(config);
}

}  // namespace

int main() {
  bench::print_header("Ablation", "Temporal vs spatial shifting (Section 2.2)");

  for (const geo::Region& region : {geo::west_us_region(), geo::central_eu_region()}) {
    const auto service = bench::make_service(region);
    core::EdgeSimulation simulation(
        sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);

    const core::SimulationResult none = run_mode(simulation, false, 0);
    const core::SimulationResult temporal = run_mode(simulation, false, 24);
    const core::SimulationResult spatial = run_mode(simulation, true, 0);
    const core::SimulationResult both = run_mode(simulation, true, 24);

    util::Table table({"Mode", "Carbon (g)", "Saving", "dRTT (ms)", "Deferred"});
    table.set_title(region.name + ": two weeks, ResNet50 workload");
    const auto add = [&](const char* name, const core::SimulationResult& r) {
      table.add_row({name, util::format_fixed(r.telemetry.total_carbon_g(), 1),
                     util::format_percent(core::carbon_saving(none, r)),
                     util::format_fixed(core::latency_increase_ms(none, r), 2),
                     std::to_string(r.apps_deferred)});
    };
    add("none (Latency-aware, immediate)", none);
    add("temporal only (defer <= 24h)", temporal);
    add("spatial only (CarbonEdge)", spatial);
    add("temporal + spatial", both);
    table.print(std::cout);
  }
  bench::print_takeaway(
      "Spatial shifting dominates temporal shifting at the edge (the paper's Section 2.2 "
      "premise): inter-zone differences dwarf intra-zone diurnal swings, and deferral "
      "adds little once placement is already carbon-aware.");
  return 0;
}
