// Ablation: temporal vs spatial workload shifting (paper Section 2.2, which
// cites prior findings that spatial shifting "has much more potential...
// there tend to be much larger differences in carbon between locations than
// within any one location over time"). Same batch workload, four modes:
//   * none            — Latency-aware, immediate start
//   * temporal only   — Latency-aware placement, arrivals may defer up to
//                       24 h waiting for a low-intensity hour at the origin
//   * spatial only    — CarbonEdge, immediate start
//   * both            — CarbonEdge + 24 h deferral
//
// Expressed as a ScenarioGrid over region x policy x defer-budget (8 two-
// week cells) dispatched in parallel by the ScenarioRunner.
#include "bench_util.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/region.hpp"
#include "runner/scenario_grid.hpp"

#include "runner/scenario_runner.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Ablation", "Temporal vs spatial shifting (Section 2.2)");

  const std::vector<geo::Region> regions = {geo::west_us_region(), geo::central_eu_region()};
  const std::vector<core::PolicyConfig> policies = {core::PolicyConfig::latency_aware(),
                                                    core::PolicyConfig::carbon_edge()};
  const std::vector<std::uint32_t> defers = {0, 24};

  core::SimulationConfig config;
  config.epochs = 14 * 24;  // two weeks, hourly
  config.workload.arrivals_per_site = 0.5;
  config.workload.mean_lifetime_epochs = 8.0;
  config.workload.model_weights = {0.0, 1.0, 0.0, 0.0};
  config.workload.latency_limit_rtt_ms = 25.0;
  config.forecast_horizon_hours = 6;

  runner::ScenarioGrid grid(bench::apply_smoke_epochs(config));
  grid.with_regions(regions).with_policies(policies).with_defer_epochs(defers);
  const auto outcomes = runner::ScenarioRunner().run(grid);

  // Row-major order: region (outermost), policy, defer budget (innermost).
  for (std::size_t r = 0; r < regions.size(); ++r) {
    const auto cell = [&](std::size_t policy, std::size_t defer) -> const core::SimulationResult& {
      return outcomes[(r * policies.size() + policy) * defers.size() + defer].result;
    };
    const core::SimulationResult& none = cell(0, 0);

    util::Table table({"Mode", "Carbon (g)", "Saving", "dRTT (ms)", "Deferred"});
    table.set_title(regions[r].name + ": two weeks, ResNet50 workload");
    const auto add = [&](const char* name, const core::SimulationResult& result) {
      table.add_row({name, util::format_fixed(result.telemetry.total_carbon_g(), 1),
                     util::format_percent(core::carbon_saving(none, result)),
                     util::format_fixed(core::latency_increase_ms(none, result), 2),
                     std::to_string(result.apps_deferred)});
    };
    add("none (Latency-aware, immediate)", none);
    add("temporal only (defer <= 24h)", cell(0, 1));
    add("spatial only (CarbonEdge)", cell(1, 0));
    add("temporal + spatial", cell(1, 1));
    table.print(std::cout);
  }
  bench::print_takeaway(
      "Spatial shifting dominates temporal shifting at the edge (the paper's Section 2.2 "
      "premise): inter-zone differences dwarf intra-zone diurnal swings, and deferral "
      "adds little once placement is already carbon-aware.");
  return 0;
}
