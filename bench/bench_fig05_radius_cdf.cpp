// Figure 5: for every CDN edge site in the US + Europe, the best carbon
// saving available within a search radius D (percentage difference in
// yearly-mean intensity to the greenest site within D), as a CDF, for
// D in {200, 500, 1000} km; plus (d) the one-way latency of pairs within
// each radius. Paper: at D=200 km 32% of sites can save >20%; at D=1000 km
// 78% can save >20% and 45% can save >40%.
#include "bench_util.hpp"

#include "analysis/mesoscale.hpp"
#include "geo/coord.hpp"
#include "geo/latency.hpp"
#include "geo/region.hpp"
#include "geo/site.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 5", "Carbon savings within a search radius across CDN sites");

  // Union of the US and EU CDN deployments (paper: 496 Akamai DCs).
  const geo::Region us = geo::cdn_region(geo::Continent::kNorthAmerica);
  const geo::Region eu = geo::cdn_region(geo::Continent::kEurope);
  std::vector<geo::City> sites = us.resolve();
  const std::vector<geo::City> eu_sites = eu.resolve();
  sites.insert(sites.end(), eu_sites.begin(), eu_sites.end());

  const std::vector<double> mean_intensity = analysis::yearly_means(sites);
  const geo::LatencyModel latency;

  util::Table cdf_table({"Radius", "sites", "saving<20%", "saving>20%", "saving>40%",
                         "median saving", "median 1-way ms"});
  cdf_table.set_title("Figure 5a-d: best intra-radius carbon saving + latency");
  analysis::RadiusStudy study_500;
  for (const double radius_km : {200.0, 500.0, 1000.0}) {
    const analysis::RadiusStudy study =
        analysis::radius_study(sites, mean_intensity, latency, radius_km);
    if (radius_km == 500.0) study_500 = study;
    cdf_table.add_row({util::format_fixed(radius_km, 0) + " km", std::to_string(sites.size()),
                       util::format_percent(1.0 - study.fraction_above_20, 0),
                       util::format_percent(study.fraction_above_20, 0),
                       util::format_percent(study.fraction_above_40, 0),
                       util::format_fixed(study.median_saving, 1) + "%",
                       util::format_fixed(study.median_latency_ms, 1)});
  }
  cdf_table.print(std::cout);

  util::Table curve({"Saving (%)", "CDF", ""});
  curve.set_title("Figure 5b: CDF of best saving within 500 km");
  for (double x = 0.0; x <= 90.0; x += 10.0) {
    const double f = study_500.saving_cdf.at(x);
    curve.add_row({util::format_fixed(x, 0), util::format_fixed(f, 2), util::format_bar(f, 1.0)});
  }
  curve.print(std::cout);
  bench::print_takeaway(
      "Savings opportunities grow with radius; a majority of sites see >20% within "
      "500-1000 km (paper: 57% at 500 km, 78% at 1000 km).");
  return 0;
}
