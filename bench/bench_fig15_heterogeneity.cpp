// Figure 15: impact of resource heterogeneity — carbon emissions (a) and
// energy (b) for the model mix on Orin Nano-only, A2-only, GTX 1080-only,
// and mixed clusters, under all four policies. Paper: CarbonEdge cuts
// emissions vs Latency-aware on every hardware; with heterogeneous
// resources it exploits efficiency x intensity x speed jointly (98.4%, 79%,
// 63% lower than Latency-/Intensity-/Energy-aware); carbon-first placement
// costs energy vs Energy-aware.
#include "bench_util.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 15", "Heterogeneous resources x policies");

  const geo::Region region = geo::central_eu_region();
  const auto service = bench::make_service(region);
  const auto policies = bench::evaluation_policies();

  util::Table carbon_table({"Cluster", "Latency-aware (g)", "Energy-aware (g)",
                            "Intensity-aware (g)", "CarbonEdge (g)"});
  carbon_table.set_title("Figure 15a: carbon emissions (24h, model mix)");
  util::Table energy_table({"Cluster", "Latency-aware (Wh)", "Energy-aware (Wh)",
                            "Intensity-aware (Wh)", "CarbonEdge (Wh)"});
  energy_table.set_title("Figure 15b: energy consumption");

  struct Scenario {
    std::string name;
    std::vector<sim::DeviceType> devices;
  };
  const std::vector<Scenario> scenarios = {
      {"Orin Nano", {sim::DeviceType::kOrinNano}},
      {"A2", {sim::DeviceType::kA2}},
      {"GTX 1080", {sim::DeviceType::kGtx1080}},
      {"Hetero.", {sim::DeviceType::kOrinNano, sim::DeviceType::kA2, sim::DeviceType::kGtx1080}},
  };

  core::SimulationConfig config;
  config.epochs = 24;
  config.workload.arrivals_per_site = 1.5;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.mean_lifetime_epochs = 10.0;
  config.workload.latency_limit_rtt_ms = 25.0;

  double hetero_latency_aware = 0.0;
  double hetero_carbon_edge = 0.0;
  for (const Scenario& scenario : scenarios) {
    core::EdgeSimulation simulation(sim::make_hetero_cluster(region, 3, scenario.devices),
                                    service);
    const auto results = core::run_policies(simulation, config, policies);
    std::vector<double> carbon_row;
    std::vector<double> energy_row;
    for (const auto& result : results) {
      carbon_row.push_back(result.telemetry.total_carbon_g());
      energy_row.push_back(result.telemetry.total_energy_wh());
    }
    carbon_table.add_row(scenario.name, carbon_row, 1);
    energy_table.add_row(scenario.name, energy_row, 1);
    if (scenario.name == "Hetero.") {
      hetero_latency_aware = carbon_row[0];
      hetero_carbon_edge = carbon_row[3];
    }
  }
  carbon_table.print(std::cout);
  energy_table.print(std::cout);
  bench::print_takeaway("Hetero cluster: CarbonEdge emits " +
                        util::format_percent(1.0 - hetero_carbon_edge /
                                                        std::max(hetero_latency_aware, 1e-9)) +
                        " less than Latency-aware (paper: 98.4%); energy-efficient hardware "
                        "alone is not enough - intensity and speed interact.");
  return 0;
}
