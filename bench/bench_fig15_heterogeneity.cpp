// Figure 15: impact of resource heterogeneity — carbon emissions (a) and
// energy (b) for the model mix on Orin Nano-only, A2-only, GTX 1080-only,
// and mixed clusters, under all four policies. Paper: CarbonEdge cuts
// emissions vs Latency-aware on every hardware; with heterogeneous
// resources it exploits efficiency x intensity x speed jointly (98.4%, 79%,
// 63% lower than Latency-/Intensity-/Energy-aware); carbon-first placement
// costs energy vs Energy-aware.
//
// Expressed as a ScenarioGrid (device mixes x policies) dispatched across
// all cores by the ScenarioRunner; the 16 cells run concurrently and the
// tables are rebuilt from the row-major outcome order.
#include "bench_util.hpp"
#include "core/simulation.hpp"
#include "geo/region.hpp"
#include "runner/scenario_grid.hpp"

#include "runner/scenario_runner.hpp"
#include "sim/device.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 15", "Heterogeneous resources x policies");

  const auto policies = bench::evaluation_policies();

  const std::vector<runner::DeviceMix> mixes = {
      {"Orin Nano", {sim::DeviceType::kOrinNano}, 3},
      {"A2", {sim::DeviceType::kA2}, 3},
      {"GTX 1080", {sim::DeviceType::kGtx1080}, 3},
      {"Hetero.",
       {sim::DeviceType::kOrinNano, sim::DeviceType::kA2, sim::DeviceType::kGtx1080},
       3},
  };

  core::SimulationConfig config;
  config.epochs = 24;
  config.workload.arrivals_per_site = 1.5;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.mean_lifetime_epochs = 10.0;
  config.workload.latency_limit_rtt_ms = 25.0;

  runner::ScenarioGrid grid(config);
  grid.with_regions({geo::central_eu_region()}).with_device_mixes(mixes).with_policies(policies);

  const runner::ScenarioRunner sweep;
  const auto outcomes = sweep.run(grid);

  util::Table carbon_table({"Cluster", "Latency-aware (g)", "Energy-aware (g)",
                            "Intensity-aware (g)", "CarbonEdge (g)"});
  carbon_table.set_title("Figure 15a: carbon emissions (24h, model mix)");
  util::Table energy_table({"Cluster", "Latency-aware (Wh)", "Energy-aware (Wh)",
                            "Intensity-aware (Wh)", "CarbonEdge (Wh)"});
  energy_table.set_title("Figure 15b: energy consumption");

  double hetero_latency_aware = 0.0;
  double hetero_carbon_edge = 0.0;
  for (std::size_t m = 0; m < mixes.size(); ++m) {
    std::vector<double> carbon_row;
    std::vector<double> energy_row;
    for (std::size_t p = 0; p < policies.size(); ++p) {
      const auto& result = outcomes[m * policies.size() + p].result;
      carbon_row.push_back(result.telemetry.total_carbon_g());
      energy_row.push_back(result.telemetry.total_energy_wh());
    }
    carbon_table.add_row(mixes[m].name, carbon_row, 1);
    energy_table.add_row(mixes[m].name, energy_row, 1);
    if (mixes[m].name == "Hetero.") {
      hetero_latency_aware = carbon_row[0];
      hetero_carbon_edge = carbon_row[3];
    }
  }
  carbon_table.print(std::cout);
  energy_table.print(std::cout);
  bench::print_takeaway("Hetero cluster: CarbonEdge emits " +
                        util::format_percent(1.0 - hetero_carbon_edge /
                                                       std::max(hetero_latency_aware, 1e-9)) +
                        " less than Latency-aware (paper: 98.4%); energy-efficient hardware "
                        "alone is not enough - intensity and speed interact.");
  return 0;
}
