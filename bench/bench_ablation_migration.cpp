// Ablation: data-movement cost of migrations (the paper's Section 9 future
// work, implemented here). Compares, on a month-long Central-EU CDN slice:
//   * sticky placement (no re-optimization),
//   * naive periodic re-optimization (migrates freely),
//   * cost-aware re-optimization (only moves whose projected carbon benefit
//     repays the transfer emissions).
// Also reports resilience under crash-failure injection.
#include "bench_util.hpp"

using namespace carbonedge;

namespace {

core::SimulationResult run(core::EdgeSimulation& simulation, bool reopt, bool cost_aware,
                           double wh_per_gb) {
  core::SimulationConfig config;
  config.policy = core::PolicyConfig::carbon_edge();
  config.epochs = 31 * 24 / 3;
  config.epoch_hours = 3.0;
  config.workload.arrivals_per_site = 0.4;
  config.workload.mean_lifetime_epochs = 40.0;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.latency_limit_rtt_ms = 20.0;
  config.reoptimize_every = reopt ? 8 : 0;  // daily at 3h epochs
  config.migration.cost_aware = cost_aware;
  config.migration.network_energy_wh_per_gb = wh_per_gb;
  return simulation.run(config);
}

}  // namespace

int main() {
  bench::print_header("Ablation", "Migration data-movement cost (paper future work)");

  const geo::Region region = geo::cdn_region(geo::Continent::kEurope, 25);
  const auto service = bench::make_service(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);

  util::Table table({"Strategy", "Total carbon (g)", "Op carbon (g)", "Migration carbon (g)",
                     "Migrations", "Skipped"});
  table.set_title("Daily re-optimization under a 60 Wh/GB transfer cost (1 month)");
  const auto add = [&](const char* name, const core::SimulationResult& r) {
    table.add_row({name, util::format_fixed(r.telemetry.total_carbon_g(), 1),
                   util::format_fixed(r.telemetry.total_carbon_g() - r.migration_carbon_g, 1),
                   util::format_fixed(r.migration_carbon_g, 1), std::to_string(r.migrations),
                   std::to_string(r.migrations_skipped)});
  };
  add("sticky (no re-optimization)", run(simulation, false, false, 60.0));
  add("naive periodic re-optimization", run(simulation, true, false, 60.0));
  add("cost-aware re-optimization", run(simulation, true, true, 60.0));
  table.print(std::cout);

  util::Table sweep({"Transfer cost (Wh/GB)", "naive total (g)", "cost-aware total (g)",
                     "cost-aware moves"});
  sweep.set_title("Sensitivity to the network energy intensity");
  for (const double wh : {10.0, 60.0, 240.0, 1000.0}) {
    const core::SimulationResult naive = run(simulation, true, false, wh);
    const core::SimulationResult aware = run(simulation, true, true, wh);
    sweep.add_row({util::format_fixed(wh, 0),
                   util::format_fixed(naive.telemetry.total_carbon_g(), 1),
                   util::format_fixed(aware.telemetry.total_carbon_g(), 1),
                   std::to_string(aware.migrations)});
  }
  sweep.print(std::cout);
  bench::print_takeaway(
      "Re-optimization helps track intensity shifts, but transfer emissions can eat the "
      "gains; the cost-aware filter keeps the benefit as transfer costs grow.");

  // Crash-failure resilience of the placement loop.
  core::SimulationConfig faulty;
  faulty.policy = core::PolicyConfig::carbon_edge();
  faulty.epochs = 31 * 8;
  faulty.epoch_hours = 3.0;
  faulty.workload.arrivals_per_site = 0.4;
  faulty.workload.mean_lifetime_epochs = 40.0;
  faulty.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  faulty.failures.mtbf_epochs = 120.0;
  faulty.failures.repair_epochs = 8;
  const core::SimulationResult crashy = simulation.run(faulty);
  bench::print_takeaway("Failure injection: " + std::to_string(crashy.server_failures) +
                        " crashes, " + std::to_string(crashy.apps_redeployed) +
                        " applications redeployed, " + std::to_string(crashy.apps_rejected) +
                        " rejected.");
  return 0;
}
