// Ablation: data-movement cost of migrations (the paper's Section 9 future
// work, implemented here). Compares, on a month-long Central-EU CDN slice:
//   * sticky placement (no re-optimization),
//   * naive periodic re-optimization (migrates freely),
//   * cost-aware re-optimization (only moves whose projected carbon benefit
//     repays the transfer emissions).
// Also reports resilience under crash-failure injection.
//
// Expressed as ScenarioGrid sweeps over the migration-strategy axis,
// dispatched in parallel by the ScenarioRunner.
#include "bench_util.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/coord.hpp"
#include "geo/region.hpp"
#include "runner/scenario_grid.hpp"

#include "runner/scenario_runner.hpp"
#include "util/table.hpp"

using namespace carbonedge;

namespace {

core::SimulationConfig month_config() {
  core::SimulationConfig config;
  config.policy = core::PolicyConfig::carbon_edge();
  config.epochs = 31 * 24 / 3;
  config.epoch_hours = 3.0;
  config.workload.arrivals_per_site = 0.4;
  config.workload.mean_lifetime_epochs = 40.0;
  config.workload.model_weights = {1.0, 1.0, 1.0, 0.0};
  config.workload.latency_limit_rtt_ms = 20.0;
  return config;
}

runner::MigrationSpec strategy(std::string name, bool reopt, bool cost_aware, double wh_per_gb) {
  runner::MigrationSpec spec;
  spec.name = std::move(name);
  spec.reoptimize_every = reopt ? 8 : 0;  // daily at 3h epochs
  spec.migration.cost_aware = cost_aware;
  spec.migration.network_energy_wh_per_gb = wh_per_gb;
  return spec;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "Migration data-movement cost (paper future work)");

  const geo::Region region = geo::cdn_region(geo::Continent::kEurope, 25);
  const runner::ScenarioRunner sweep_runner;

  // One scenario list for the whole bench: the three headline strategies
  // (at 60 Wh/GB), naive/cost-aware pairs across the transfer-cost range
  // (the 60 Wh/GB pair reuses the headline cells instead of re-simulating),
  // and the crash-failure run — one run() call, one trace synthesis, all
  // ten month-long simulations dispatched together.
  constexpr double kHeadlineWhPerGb = 60.0;  // literature WAN transfer cost
  const std::vector<double> costs = {10.0, kHeadlineWhPerGb, 240.0, 1000.0};
  std::vector<runner::MigrationSpec> strategies = {
      strategy("sticky (no re-optimization)", false, false, kHeadlineWhPerGb),
      strategy("naive periodic re-optimization", true, false, kHeadlineWhPerGb),
      strategy("cost-aware re-optimization", true, true, kHeadlineWhPerGb),
  };
  const std::size_t headline_count = strategies.size();
  // Index of the re-optimizing cell with this cost model, appending a new
  // spec when no existing one (headline or sensitivity) matches — the
  // kHeadlineWhPerGb pairs resolve to the headline cells instead of
  // re-simulating identical configs.
  const auto cell_for = [&strategies](bool cost_aware, double wh) {
    for (std::size_t i = 0; i < strategies.size(); ++i) {
      if (strategies[i].reoptimize_every != 0 &&
          strategies[i].migration.cost_aware == cost_aware &&
          strategies[i].migration.network_energy_wh_per_gb == wh) {
        return i;
      }
    }
    strategies.push_back(strategy((cost_aware ? "aware@" : "naive@") + util::format_fixed(wh, 0),
                                  true, cost_aware, wh));
    return strategies.size() - 1;
  };
  // Per-cost (naive index, cost-aware index) into the combined outcomes.
  std::vector<std::pair<std::size_t, std::size_t>> sensitivity_cells;
  for (const double wh : costs) {
    const std::size_t naive_cell = cell_for(false, wh);
    sensitivity_cells.emplace_back(naive_cell, cell_for(true, wh));
  }
  runner::ScenarioGrid grid(month_config());
  grid.with_regions({region}).with_migrations(strategies);

  // Crash-failure resilience of the placement loop, appended to the same
  // dispatch (it shares the region, so also the synthesized traces).
  runner::FailureSpec crashes;
  crashes.name = "mtbf=120";
  crashes.failures.mtbf_epochs = 120.0;
  crashes.failures.repair_epochs = 8;
  runner::ScenarioGrid failure_grid(month_config());
  failure_grid.with_regions({region}).with_failures({crashes});

  std::vector<runner::Scenario> scenarios = grid.expand();
  const std::size_t failure_cell = scenarios.size();
  for (runner::Scenario& scenario : failure_grid.expand()) {
    scenario.index = scenarios.size();
    scenarios.push_back(std::move(scenario));
  }
  const auto outcomes = sweep_runner.run(std::move(scenarios));

  util::Table table({"Strategy", "Total carbon (g)", "Op carbon (g)", "Migration carbon (g)",
                     "Migrations", "Skipped"});
  table.set_title("Daily re-optimization under a 60 Wh/GB transfer cost (1 month)");
  for (std::size_t i = 0; i < headline_count; ++i) {
    const core::SimulationResult& r = outcomes[i].result;
    table.add_row({strategies[i].name, util::format_fixed(r.telemetry.total_carbon_g(), 1),
                   util::format_fixed(r.telemetry.total_carbon_g() - r.migration_carbon_g, 1),
                   util::format_fixed(r.migration_carbon_g, 1), std::to_string(r.migrations),
                   std::to_string(r.migrations_skipped)});
  }
  table.print(std::cout);

  util::Table sweep({"Transfer cost (Wh/GB)", "naive total (g)", "cost-aware total (g)",
                     "cost-aware moves"});
  sweep.set_title("Sensitivity to the network energy intensity");
  for (std::size_t c = 0; c < costs.size(); ++c) {
    const core::SimulationResult& naive = outcomes[sensitivity_cells[c].first].result;
    const core::SimulationResult& aware = outcomes[sensitivity_cells[c].second].result;
    sweep.add_row({util::format_fixed(costs[c], 0),
                   util::format_fixed(naive.telemetry.total_carbon_g(), 1),
                   util::format_fixed(aware.telemetry.total_carbon_g(), 1),
                   std::to_string(aware.migrations)});
  }
  sweep.print(std::cout);
  bench::print_takeaway(
      "Re-optimization helps track intensity shifts, but transfer emissions can eat the "
      "gains; the cost-aware filter keeps the benefit as transfer costs grow.");

  const core::SimulationResult& crashy = outcomes[failure_cell].result;
  bench::print_takeaway("Failure injection: " + std::to_string(crashy.server_failures) +
                        " crashes, " + std::to_string(crashy.apps_redeployed) +
                        " applications redeployed, " + std::to_string(crashy.apps_rejected) +
                        " rejected.");
  return 0;
}
