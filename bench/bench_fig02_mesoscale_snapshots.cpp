// Figure 2: single-hour carbon-intensity snapshots of the four mesoscale
// regions (Florida, West US, Italy, Central EU) with their geographic
// extents. The paper reports inter-zone snapshot spreads of 2.5x / 7.9x /
// 2.2x / 19.5x; expect the same ordering (Central EU >> West US > Florida ~
// Italy).
#include "bench_util.hpp"
#include "carbon/caltime.hpp"

#include "carbon/synthesizer.hpp"
#include "carbon/trace.hpp"
#include "carbon/zone.hpp"
#include "geo/coord.hpp"
#include "geo/region.hpp"
#include "geo/site.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 2", "Carbon intensity snapshots of four mesoscale regions");

  const auto& catalog = carbon::ZoneCatalog::builtin();
  const carbon::TraceSynthesizer synthesizer;
  // Mid-July, 17:00 local: solar still up in the west, evening ramp begun —
  // a representative single hour like the paper's snapshot.
  const carbon::HourIndex snapshot = carbon::month_start_hour(6) + 14 * 24 + 17;

  for (const geo::Region& region : geo::mesoscale_regions()) {
    const geo::BoundingBox box = region.bounds();
    util::Table table({"Zone", "Intensity (g/kWh)", ""});
    table.set_title("Figure 2: " + region.name + "  (" +
                    util::format_fixed(box.width_km(), 0) + "km x " +
                    util::format_fixed(box.height_km(), 0) + "km)");
    double lo = 1e18;
    double hi = 0.0;
    std::vector<std::pair<std::string, double>> rows;
    for (const geo::City& city : region.resolve()) {
      const carbon::CarbonTrace trace = synthesizer.synthesize(catalog.spec_for(city));
      const double value = trace.at(snapshot);
      rows.emplace_back(city.name, value);
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
    for (const auto& [name, value] : rows) {
      table.add_row({name, util::format_fixed(value, 1), util::format_bar(value, hi)});
    }
    table.print(std::cout);
    bench::print_takeaway(region.name + " snapshot spread: " +
                          util::format_fixed(hi / std::max(lo, 1e-9), 1) + "x");
  }
  return 0;
}
