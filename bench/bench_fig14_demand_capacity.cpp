// Figure 14: effect of demand and capacity skew. Three scenarios per
// continent: Homo (uniform demand, uniform capacity), Demand (population-
// proportional demand, uniform capacity), Capacity (uniform demand,
// population-proportional capacity). Paper: skew can reduce US savings by
// ~6% (dirty-origin load with no green neighbors); Europe changes <1.6%.
//
// Expressed as three ScenarioGrids (one per skew scenario — the Capacity
// case swaps in a population-proportional DeviceMix, the Demand case a
// population-weighted workload) merged into a single ScenarioRunner
// dispatch, so all 12 quarter-long cells run concurrently.
#include "bench_util.hpp"
#include "carbon/caltime.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/coord.hpp"
#include "geo/region.hpp"
#include "runner/scenario_grid.hpp"

#include "runner/scenario_runner.hpp"
#include "sim/workload.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 14", "Effect of demand and capacity distributions");

  util::Table table({"Continent", "Scenario", "Saving", "dRTT (ms)"});
  table.set_title("Figure 14: carbon savings under demand/capacity skew (one quarter)");

  const std::vector<core::PolicyConfig> policies = {core::PolicyConfig::latency_aware(),
                                                    core::PolicyConfig::carbon_edge()};
  const std::vector<std::string> skews = {"Homo", "Demand", "Capacity"};

  core::SimulationConfig config = bench::cdn_config();
  config.epochs = carbon::kHoursPerYear / 3 / 4;  // one quarter
  config.workload.arrivals_per_site = 0.5;
  config = bench::apply_smoke_epochs(config);

  std::vector<runner::Scenario> scenarios;
  for (const geo::Continent continent :
       {geo::Continent::kNorthAmerica, geo::Continent::kEurope}) {
    const geo::Region region = geo::cdn_region(continent, 30);
    for (const std::string& skew : skews) {
      core::SimulationConfig cell_config = config;
      runner::DeviceMix mix;  // uniform: two A2 servers per site
      mix.servers_per_site = 2;
      if (skew == "Demand") {
        cell_config.workload.demand = sim::DemandDistribution::kPopulation;
      } else if (skew == "Capacity") {
        mix.name = "A2 (population)";
        mix.total_servers = region.cities.size() * 2;
      }
      runner::ScenarioGrid grid(cell_config);
      grid.with_regions({region}).with_device_mixes({mix}).with_policies(policies);
      for (runner::Scenario& scenario : grid.expand()) {
        scenario.index = scenarios.size();
        scenarios.push_back(std::move(scenario));
      }
    }
  }
  const auto outcomes = runner::ScenarioRunner().run(std::move(scenarios));

  // Merged order: continent (outermost), skew, policy (innermost).
  for (std::size_t c = 0; c < 2; ++c) {
    for (std::size_t k = 0; k < skews.size(); ++k) {
      const std::size_t base_cell = (c * skews.size() + k) * policies.size();
      const core::SimulationResult& base = outcomes[base_cell].result;
      const core::SimulationResult& ce = outcomes[base_cell + 1].result;
      table.add_row({c == 0 ? "US" : "Europe", skews[k],
                     util::format_percent(core::carbon_saving(base, ce)),
                     util::format_fixed(core::latency_increase_ms(base, ce), 1)});
    }
  }
  table.print(std::cout);
  bench::print_takeaway(
      "Demand/capacity skew moves savings by only a few percentage points; the effect is "
      "larger in the US where high-carbon metros lack green neighbors (paper Fig 14).");
  return 0;
}
