// Figure 14: effect of demand and capacity skew. Three scenarios per
// continent: Homo (uniform demand, uniform capacity), Demand (population-
// proportional demand, uniform capacity), Capacity (uniform demand,
// population-proportional capacity). Paper: skew can reduce US savings by
// ~6% (dirty-origin load with no green neighbors); Europe changes <1.6%.
#include "bench_util.hpp"

using namespace carbonedge;

int main() {
  bench::print_header("Figure 14", "Effect of demand and capacity distributions");

  util::Table table({"Continent", "Scenario", "Saving", "dRTT (ms)"});
  table.set_title("Figure 14: carbon savings under demand/capacity skew (one quarter)");

  for (const geo::Continent continent :
       {geo::Continent::kNorthAmerica, geo::Continent::kEurope}) {
    const geo::Region region = geo::cdn_region(continent, 30);
    const auto service = bench::make_service(region);
    const std::size_t total_servers = region.cities.size() * 2;

    for (const std::string scenario : {"Homo", "Demand", "Capacity"}) {
      sim::EdgeCluster cluster =
          scenario == "Capacity"
              ? sim::make_population_cluster(region, total_servers, sim::DeviceType::kA2)
              : sim::make_uniform_cluster(region, 2, sim::DeviceType::kA2);
      core::EdgeSimulation simulation(std::move(cluster), service);
      core::SimulationConfig config = bench::cdn_config();
      config.epochs = carbon::kHoursPerYear / 3 / 4;  // one quarter
      config.workload.arrivals_per_site = 0.5;
      if (scenario == "Demand") {
        config.workload.demand = sim::DemandDistribution::kPopulation;
      }
      const auto results = core::run_policies(
          simulation, config,
          {core::PolicyConfig::latency_aware(), core::PolicyConfig::carbon_edge()});
      table.add_row({continent == geo::Continent::kNorthAmerica ? "US" : "Europe", scenario,
                     util::format_percent(core::carbon_saving(results[0], results[1])),
                     util::format_fixed(core::latency_increase_ms(results[0], results[1]), 1)});
    }
  }
  table.print(std::cout);
  bench::print_takeaway(
      "Demand/capacity skew moves savings by only a few percentage points; the effect is "
      "larger in the US where high-carbon metros lack green neighbors (paper Fig 14).");
  return 0;
}
