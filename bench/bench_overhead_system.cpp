// Section 6.5 system overhead: per-workload decision latency (~3.3 ms at
// testbed scale) and deployment initiation latency (~1.01 s), measured on
// the mesoscale regional deployment.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "carbon/service.hpp"
#include "core/orchestrator.hpp"
#include "core/placement_service.hpp"
#include "core/policy.hpp"
#include "core/problem.hpp"
#include "geo/latency.hpp"
#include "geo/region.hpp"
#include "sim/app_model.hpp"
#include "sim/datacenter.hpp"
#include "sim/device.hpp"
#include "sim/workload.hpp"
#include "util/table.hpp"

using namespace carbonedge;

namespace {

struct Testbed {
  sim::EdgeCluster cluster;
  carbon::CarbonIntensityService service;
  geo::LatencyMatrix latency;

  Testbed()
      : cluster(sim::make_uniform_cluster(geo::florida_region(), 1, sim::DeviceType::kA2)) {
    service.add_region(geo::florida_region());
    latency = geo::LatencyMatrix(geo::LatencyModel{}, cluster.cities());
  }
};

std::vector<sim::Application> one_batch(std::size_t n) {
  std::vector<sim::Application> apps;
  for (std::size_t i = 0; i < n; ++i) {
    sim::Application app;
    app.id = i;
    app.model = sim::ModelType::kResNet50;
    app.origin_site = i % 5;
    app.rps = 5.0;
    app.latency_limit_rtt_ms = 25.0;
    apps.push_back(app);
  }
  return apps;
}

void BM_DecisionLatency(benchmark::State& state) {
  Testbed testbed;
  const auto apps = one_batch(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    sim::EdgeCluster working = testbed.cluster;
    core::PlacementService service(core::PolicyConfig::carbon_edge());
    core::PlacementInput input;
    input.cluster = &working;
    input.latency = &testbed.latency;
    input.carbon = &testbed.service;
    input.now = 12;
    benchmark::DoNotOptimize(service.place(input, apps));
  }
}
BENCHMARK(BM_DecisionLatency)->Arg(1)->Arg(5)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Section 6.5", "System overhead: decision + deployment latency");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();

  // Deployment latency via the orchestrator pipeline.
  Testbed testbed;
  sim::EdgeCluster working = testbed.cluster;
  core::PlacementService service(core::PolicyConfig::carbon_edge());
  core::PlacementInput input;
  input.cluster = &working;
  input.latency = &testbed.latency;
  input.carbon = &testbed.service;
  input.now = 12;
  const core::PlacementResult placement = service.place(input, one_batch(5));
  core::Orchestrator orchestrator;
  orchestrator.deploy(placement);

  util::Table table({"Stage", "Latency", "Paper"});
  table.set_title("Section 6.5: overheads");
  table.add_row({"Placement decision (5 apps x 5 DCs)",
                 util::format_fixed(placement.solve_time_ms, 2) + " ms", "~3.3 ms"});
  table.add_row({"Deployment initiation (per app)",
                 util::format_fixed(orchestrator.mean_deploy_ms() / 1000.0, 2) + " s",
                 "~1.01 s"});
  table.print(std::cout);
  bench::print_takeaway("Decision latency is milliseconds; deployment dominates (~1 s), as in "
                        "the paper's prototype measurements.");
  return 0;
}
