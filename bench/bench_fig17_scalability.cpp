// Figure 17: scalability of the incremental placement algorithm — runtime
// and memory vs the number of servers (100-400, apps fixed at 50) and vs
// the number of applications (20-140, servers fixed at 400). Paper bound:
// <=3 s and <=200 MB at the largest setting. Uses google-benchmark for the
// timing harness plus a summary table with peak-RSS readings.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include "bench_util.hpp"
#include "carbon/service.hpp"
#include "core/placement_service.hpp"
#include "core/policy.hpp"
#include "core/problem.hpp"
#include "core/simulation.hpp"
#include "geo/coord.hpp"
#include "geo/latency.hpp"
#include "geo/region.hpp"
#include "sim/datacenter.hpp"
#include "sim/device.hpp"
#include "sim/workload.hpp"
#include "util/parallelism.hpp"
#include "util/table.hpp"

using namespace carbonedge;

namespace {

struct Instance {
  sim::EdgeCluster cluster;
  carbon::CarbonIntensityService service;
  geo::LatencyMatrix latency;
  std::vector<sim::Application> apps;
};

Instance make_instance(std::size_t servers, std::size_t apps) {
  const geo::Region region = geo::cdn_region(geo::Continent::kNorthAmerica, 40);
  Instance inst{
      sim::make_uniform_cluster(region,
                                (servers + region.cities.size() - 1) / region.cities.size(),
                                sim::DeviceType::kA2),
      carbon::CarbonIntensityService{}, geo::LatencyMatrix{}, {}};
  inst.service.add_region(region);
  inst.latency = geo::LatencyMatrix(geo::LatencyModel{}, inst.cluster.cities());
  sim::WorkloadParams params;
  params.model_weights = {1.0, 1.0, 1.0, 0.0};
  params.latency_limit_rtt_ms = 30.0;
  sim::WorkloadGenerator generator(params, inst.cluster);
  inst.apps = generator.batch(apps);
  return inst;
}

double run_once(Instance& inst, double* out_ms) {
  core::PlacementService service(core::PolicyConfig::carbon_edge());
  core::PlacementInput input;
  sim::EdgeCluster working = inst.cluster;  // fresh copy: placement mutates
  input.cluster = &working;
  input.latency = &inst.latency;
  input.carbon = &inst.service;
  input.now = 12;
  const core::PlacementResult result = service.place(input, inst.apps);
  if (out_ms != nullptr) *out_ms = result.solve_time_ms;
  return result.objective;
}

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

void BM_PlacementServers(benchmark::State& state) {
  Instance inst = make_instance(static_cast<std::size_t>(state.range(0)), 50);
  const std::size_t actual_servers = inst.cluster.all_servers().size();
  double ms = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(inst, &ms));
  }
  state.counters["servers"] = static_cast<double>(actual_servers);
  state.counters["solve_ms"] = ms;
  state.counters["peak_rss_mb"] = peak_rss_mb();
}
BENCHMARK(BM_PlacementServers)->Arg(100)->Arg(200)->Arg(300)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_PlacementApps(benchmark::State& state) {
  Instance inst = make_instance(400, static_cast<std::size_t>(state.range(0)));
  double ms = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(inst, &ms));
  }
  state.counters["apps"] = static_cast<double>(state.range(0));
  state.counters["solve_ms"] = ms;
  state.counters["peak_rss_mb"] = peak_rss_mb();
}
BENCHMARK(BM_PlacementApps)->Arg(20)->Arg(60)->Arg(100)->Arg(140)->Unit(benchmark::kMillisecond);

// Intra-simulation scaling: one big CDN cell (40 sites, heavy arrivals,
// deferral + cost-aware re-optimization + failures — every sharded epoch
// section engaged) run under worker budgets of 1/2/4/8 lanes. The
// "carbon_g" counter must print identically on every row: lanes change
// wall-clock only, never bytes. On a multicore host the 8-lane row is the
// tentpole speedup measurement for a lone year-long cell.
void BM_YearlongCellLanes(benchmark::State& state) {
  const geo::Region region = geo::cdn_region(geo::Continent::kNorthAmerica, 40);
  carbon::CarbonIntensityService service;
  service.add_region(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 2, sim::DeviceType::kA2), service);
  core::SimulationConfig config = bench::apply_smoke_epochs(bench::cdn_config());
  config.workload.arrivals_per_site = 1.0;
  config.workload.mean_lifetime_epochs = 24.0;
  config.workload.max_defer_epochs = 8;
  config.reoptimize_every = 64;
  config.migration.cost_aware = true;
  config.failures.mtbf_epochs = 2000.0;
  util::ParallelismBudget budget(static_cast<std::size_t>(state.range(0)));
  simulation.set_parallelism_budget(&budget);
  double carbon_g = 0.0;
  for (auto _ : state) {
    const core::SimulationResult result = simulation.run(config);
    carbon_g = result.telemetry.total_carbon_g();
    benchmark::DoNotOptimize(carbon_g);
  }
  state.counters["lanes"] = static_cast<double>(state.range(0));
  state.counters["carbon_g"] = carbon_g;
}
BENCHMARK(BM_YearlongCellLanes)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

/// Tees every google-benchmark run into the --bench-json writer (name,
/// iterations, adjusted real time, user counters) while still printing the
/// normal console report.
class JsonTeeReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(bench::BenchJsonWriter* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      std::vector<std::pair<std::string, double>> counters;
      counters.emplace_back("real_time_ms", run.GetAdjustedRealTime());
      for (const auto& [name, counter] : run.counters) {
        counters.emplace_back(name, counter.value);
      }
      json_->add_row(run.benchmark_name(), static_cast<std::uint64_t>(run.iterations),
                     std::move(counters));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchJsonWriter* json_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("Figure 17", "Scalability of incremental placement");
  // --store (stripped from argv before google-benchmark sees it): every
  // make_instance's add_region pulls its traces from the persistent store's
  // L2 tier instead of re-synthesizing them — a warmed run of this bench
  // performs zero syntheses.
  const auto sweep_store = bench::init_store(argc, argv);
  const std::string metrics_path = bench::init_metrics(argc, argv);
  bench::BenchJsonWriter json = bench::init_bench_json(argc, argv);
  benchmark::Initialize(&argc, argv);
  JsonTeeReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // Summary table with the paper's headline checks.
  util::Table table({"Setting", "solve time (ms)", "peak RSS (MB)", "within paper bound"});
  table.set_title("Figure 17 summary (paper bound: <=3000 ms, <=200 MB)");
  for (const auto& [servers, apps] : std::vector<std::pair<std::size_t, std::size_t>>{
           {100, 50}, {400, 50}, {400, 140}}) {
    Instance inst = make_instance(servers, apps);
    double ms = 0.0;
    run_once(inst, &ms);
    const double rss = peak_rss_mb();
    table.add_row({std::to_string(inst.cluster.all_servers().size()) + " servers x " +
                       std::to_string(apps) + " apps",
                   util::format_fixed(ms, 1), util::format_fixed(rss, 0),
                   ms <= 3000.0 && rss <= 200.0 ? "yes" : "NO"});
    json.add_row("summary/" + std::to_string(servers) + "x" + std::to_string(apps), 1,
                 {{"solve_ms", ms}, {"peak_rss_mb", rss}});
  }
  table.print(std::cout);
  json.write();
  bench::print_takeaway(
      "Incremental placement completes well within the paper's 3 s / 200 MB envelope at "
      "400 servers x 140 applications.");
  bench::print_store_stats(sweep_store);
  bench::write_metrics_json(metrics_path);
  return 0;
}
