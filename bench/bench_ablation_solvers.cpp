// Ablation: solver path selection (DESIGN.md section 5). Compares the exact
// MILP, min-cost flow (on unit-slot restrictions), and regret-greedy +
// local-search on the same placement instances: solution quality (objective
// vs exact), runtime, and B&B node counts (the per-pair x<=y linking rows
// shrink these). A second table shards block-diagonal instances through
// connected-component decomposition and reports component counts, per-path
// shard totals, node savings, and wall-clock speedup over the monolithic
// exact solve. Justifies solve_auto's size thresholds and sharding default.
#include <chrono>

#include "bench_util.hpp"

#include "solver/assignment.hpp"
#include "solver/decompose.hpp"
#include "solver/lagrangian.hpp"
#include "solver/milp.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

using namespace carbonedge;
using namespace carbonedge::solver;

namespace {

AssignmentProblem random_instance(std::size_t apps, std::size_t servers, std::uint64_t seed,
                                  bool unit_slot, bool activation = false) {
  util::Rng rng(seed);
  AssignmentProblem p(apps, servers, unit_slot ? 1 : 2);
  for (std::size_t j = 0; j < servers; ++j) {
    if (unit_slot) {
      p.set_capacity(j, 0, 1.0 + static_cast<double>(rng.uniform_index(3)));
    } else {
      p.set_capacity(j, 0, rng.uniform(2.0, 6.0));
      p.set_capacity(j, 1, rng.uniform(2.0, 6.0));
    }
    // Every other server starts cold with a real activation price: these
    // instances carry y_j variables, so the Eq. 5 linking formulation (and
    // its B&B node count) actually matters.
    if (activation && j % 2 == 1) {
      p.set_initially_on(j, false);
      p.set_activation_cost(j, rng.uniform(1.0, 6.0));
    }
  }
  for (std::size_t i = 0; i < apps; ++i) {
    for (std::size_t j = 0; j < servers; ++j) {
      if (rng.bernoulli(0.1)) continue;
      p.set_cost(i, j, rng.uniform(0.5, 10.0));
      if (unit_slot) {
        p.set_demand(i, j, 0, 1.0);
      } else {
        p.set_demand(i, j, 0, rng.uniform(0.2, 1.2));
        p.set_demand(i, j, 1, rng.uniform(0.2, 1.2));
      }
    }
  }
  return p;
}

struct Timed {
  AssignmentSolution solution;
  double ms = 0.0;
  [[nodiscard]] double cost() const { return solution.feasible ? solution.total_cost : -1.0; }
};

template <typename F>
Timed timed(F&& solve) {
  // lint: nondeterminism-ok(this bench reports wall-clock solver timings by design; solutions themselves stay deterministic)
  const auto t0 = std::chrono::steady_clock::now();
  AssignmentSolution solution = solve();
  // lint: nondeterminism-ok(this bench reports wall-clock solver timings by design; solutions themselves stay deterministic)
  const auto t1 = std::chrono::steady_clock::now();
  return {std::move(solution), std::chrono::duration<double, std::milli>(t1 - t0).count()};
}

// K independent blocks glued into one problem: the feasible-pair graph is
// block-diagonal by construction, mimicking a latency-filtered multi-metro
// batch (apps of one block can only land on that block's servers).
AssignmentProblem block_instance(std::size_t blocks, std::size_t apps_per, std::size_t servers_per,
                                 std::uint64_t seed) {
  util::Rng rng(seed);
  AssignmentProblem p(blocks * apps_per, blocks * servers_per, 2);
  for (std::size_t b = 0; b < blocks; ++b) {
    for (std::size_t j = 0; j < servers_per; ++j) {
      p.set_capacity(b * servers_per + j, 0, rng.uniform(2.0, 6.0));
      p.set_capacity(b * servers_per + j, 1, rng.uniform(2.0, 6.0));
    }
    // One cold spare per block so activation decisions (y_j) are in play.
    p.set_initially_on(b * servers_per + servers_per - 1, false);
    p.set_activation_cost(b * servers_per + servers_per - 1, rng.uniform(1.0, 6.0));
    for (std::size_t i = 0; i < apps_per; ++i) {
      for (std::size_t j = 0; j < servers_per; ++j) {
        if (rng.bernoulli(0.1)) continue;
        const std::size_t row = b * apps_per + i;
        const std::size_t col = b * servers_per + j;
        p.set_cost(row, col, rng.uniform(0.5, 10.0));
        p.set_demand(row, col, 0, rng.uniform(0.2, 1.2));
        p.set_demand(row, col, 1, rng.uniform(0.2, 1.2));
      }
    }
  }
  return p;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "Solver paths: exact MILP vs flow vs greedy+LS");

  util::Table table({"Instance", "dual LB", "exact cost", "exact ms", "exact nodes", "flow cost",
                     "flow ms", "greedy+LS cost", "greedy+LS ms", "gap"});
  table.set_title("Solver comparison (mean over 5 seeds; dual LB = Lagrangian bound)");

  struct Shape {
    std::size_t apps;
    std::size_t servers;
    bool unit_slot;
    const char* label;
    bool activation = false;
  };
  const std::vector<Shape> shapes = {
      {8, 5, true, "8x5 unit-slot"},    {20, 10, true, "20x10 unit-slot"},
      {8, 5, false, "8x5 2-resource"},  {16, 8, false, "16x8 2-resource"},
      {30, 12, false, "30x12 2-resource"},
      {8, 6, false, "8x6 2-res +activation", true},
      {16, 8, false, "16x8 2-res +activation", true},
  };
  for (const Shape& shape : shapes) {
    double dual_bound = 0.0;
    double exact_cost = 0.0;
    double exact_ms = 0.0;
    double exact_nodes = 0.0;
    double flow_cost = 0.0;
    double flow_ms = 0.0;
    double greedy_cost = 0.0;
    double greedy_ms = 0.0;
    int counted = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      AssignmentProblem p =
          random_instance(shape.apps, shape.servers, seed * 7919, shape.unit_slot,
                          shape.activation);
      const Timed exact = timed([&] { return solve_exact(p); });
      if (exact.cost() < 0.0) continue;  // skip infeasible draws
      const Timed greedy = timed([&] {
        AssignmentSolution s = solve_greedy(p);
        improve_local_search(p, s);
        return s;
      });
      double fc = 0.0;
      double ft = 0.0;
      if (shape.unit_slot) {
        const Timed flow = timed([&] { return solve_flow(p); });
        fc = flow.cost();
        ft = flow.ms;
      }
      LagrangianOptions lag;
      lag.upper_bound = greedy.cost();
      dual_bound += lagrangian_lower_bound(p, lag).lower_bound;
      exact_cost += exact.cost();
      exact_ms += exact.ms;
      exact_nodes += static_cast<double>(exact.solution.stats.milp_nodes);
      flow_cost += fc;
      flow_ms += ft;
      greedy_cost += greedy.cost();
      greedy_ms += greedy.ms;
      ++counted;
    }
    if (counted == 0) continue;
    const double inv = 1.0 / counted;
    const double gap = exact_cost > 0.0 ? (greedy_cost - exact_cost) / exact_cost : 0.0;
    table.add_row({shape.label, util::format_fixed(dual_bound * inv, 2),
                   util::format_fixed(exact_cost * inv, 2),
                   util::format_fixed(exact_ms * inv, 2),
                   util::format_fixed(exact_nodes * inv, 1),
                   shape.unit_slot ? util::format_fixed(flow_cost * inv, 2) : "-",
                   shape.unit_slot ? util::format_fixed(flow_ms * inv, 3) : "-",
                   util::format_fixed(greedy_cost * inv, 2),
                   util::format_fixed(greedy_ms * inv, 3), util::format_percent(gap, 1)});
  }
  table.print(std::cout);
  bench::print_takeaway(
      "Flow matches the exact optimum on unit-slot instances at a fraction of the cost; "
      "greedy+LS stays within a few percent of optimal - justifying solve_auto's routing.");

  // ---- Sharded vs monolithic exact on block-diagonal (multi-metro) batches.
  util::Table sharded_table({"Instance", "comps", "exact shards", "mono cost", "shard cost",
                             "mono nodes", "shard nodes", "mono ms", "shard ms", "speedup"});
  sharded_table.set_title(
      "Connected-component sharding vs monolithic exact MILP (mean over 5 seeds)");
  struct BlockShape {
    std::size_t blocks;
    std::size_t apps_per;
    std::size_t servers_per;
    const char* label;
  };
  const std::vector<BlockShape> block_shapes = {
      {2, 5, 3, "2 x (5x3)"},
      {4, 4, 3, "4 x (4x3)"},
      {6, 5, 3, "6 x (5x3)"},
      {8, 4, 4, "8 x (4x4)"},
  };
  AssignmentOptions shard_options;
  // Per-component limit generous enough that every shard solves exactly;
  // the monolithic pair counts above are far beyond solve_auto's default.
  shard_options.exact_size_limit = 64;
  std::size_t mono_capped = 0;  // monolithic B&Bs truncated at the node cap
  for (const BlockShape& shape : block_shapes) {
    double mono_cost = 0.0;
    double shard_cost = 0.0;
    double mono_ms = 0.0;
    double shard_ms = 0.0;
    double mono_nodes = 0.0;
    double shard_nodes = 0.0;
    double comps = 0.0;
    double exact_shards = 0.0;
    int counted = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      AssignmentProblem p =
          block_instance(shape.blocks, shape.apps_per, shape.servers_per, seed * 104729);
      const Timed mono = timed([&] { return solve_exact(p); });
      if (mono.cost() < 0.0) continue;  // skip infeasible draws
      const Timed sharded = timed([&] { return solve_sharded(p, shard_options); });
      if (sharded.cost() < 0.0) continue;  // never mix -1 sentinels into a mean
      if (mono.solution.stats.milp_nodes >= MilpOptions{}.max_nodes) ++mono_capped;
      mono_cost += mono.cost();
      shard_cost += sharded.cost();
      mono_ms += mono.ms;
      shard_ms += sharded.ms;
      mono_nodes += static_cast<double>(mono.solution.stats.milp_nodes);
      shard_nodes += static_cast<double>(sharded.solution.stats.milp_nodes);
      comps += static_cast<double>(sharded.solution.stats.components);
      exact_shards += static_cast<double>(sharded.solution.stats.exact_shards);
      ++counted;
    }
    if (counted == 0) continue;
    const double inv = 1.0 / counted;
    sharded_table.add_row(
        {shape.label, util::format_fixed(comps * inv, 1), util::format_fixed(exact_shards * inv, 1),
         util::format_fixed(mono_cost * inv, 2), util::format_fixed(shard_cost * inv, 2),
         util::format_fixed(mono_nodes * inv, 1), util::format_fixed(shard_nodes * inv, 1),
         util::format_fixed(mono_ms * inv, 2), util::format_fixed(shard_ms * inv, 3),
         util::format_fixed(shard_ms > 0.0 ? mono_ms / shard_ms : 0.0, 1) + "x"});
  }
  sharded_table.print(std::cout);
  if (mono_capped > 0) {
    // A truncated search returns its best incumbent, not a proven optimum —
    // flag it so "mono cost" is never silently read as the true baseline.
    std::cout << "note: " << mono_capped
              << " monolithic solve(s) hit the B&B node cap; their costs are "
                 "incumbents, not proven optima.\n";
  }
  bench::print_takeaway(
      "Sharding is exact (stitched cost equals the monolithic optimum) while exploring far "
      "fewer B&B nodes per shard and solving components in parallel - batches that were "
      "heuristic-only as monoliths stay on the exact path.");
  return 0;
}
