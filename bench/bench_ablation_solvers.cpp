// Ablation: solver path selection (DESIGN.md section 5). Compares the exact
// MILP, min-cost flow (on unit-slot restrictions), and regret-greedy +
// local-search on the same placement instances: solution quality (objective
// vs exact) and runtime. Justifies solve_auto's size thresholds.
#include <chrono>

#include "bench_util.hpp"

#include "solver/assignment.hpp"
#include "solver/lagrangian.hpp"
#include "util/random.hpp"

using namespace carbonedge;
using namespace carbonedge::solver;

namespace {

AssignmentProblem random_instance(std::size_t apps, std::size_t servers, std::uint64_t seed,
                                  bool unit_slot) {
  util::Rng rng(seed);
  AssignmentProblem p(apps, servers, unit_slot ? 1 : 2);
  for (std::size_t j = 0; j < servers; ++j) {
    if (unit_slot) {
      p.set_capacity(j, 0, 1.0 + static_cast<double>(rng.uniform_index(3)));
    } else {
      p.set_capacity(j, 0, rng.uniform(2.0, 6.0));
      p.set_capacity(j, 1, rng.uniform(2.0, 6.0));
    }
  }
  for (std::size_t i = 0; i < apps; ++i) {
    for (std::size_t j = 0; j < servers; ++j) {
      if (rng.bernoulli(0.1)) continue;
      p.set_cost(i, j, rng.uniform(0.5, 10.0));
      if (unit_slot) {
        p.set_demand(i, j, 0, 1.0);
      } else {
        p.set_demand(i, j, 0, rng.uniform(0.2, 1.2));
        p.set_demand(i, j, 1, rng.uniform(0.2, 1.2));
      }
    }
  }
  return p;
}

template <typename F>
std::pair<double, double> timed(F&& solve) {
  const auto t0 = std::chrono::steady_clock::now();
  const AssignmentSolution solution = solve();
  const auto t1 = std::chrono::steady_clock::now();
  return {solution.feasible ? solution.total_cost : -1.0,
          std::chrono::duration<double, std::milli>(t1 - t0).count()};
}

}  // namespace

int main() {
  bench::print_header("Ablation", "Solver paths: exact MILP vs flow vs greedy+LS");

  util::Table table({"Instance", "dual LB", "exact cost", "exact ms", "flow cost", "flow ms",
                     "greedy+LS cost", "greedy+LS ms", "gap"});
  table.set_title("Solver comparison (mean over 5 seeds; dual LB = Lagrangian bound)");

  struct Shape {
    std::size_t apps;
    std::size_t servers;
    bool unit_slot;
    const char* label;
  };
  const std::vector<Shape> shapes = {
      {8, 5, true, "8x5 unit-slot"},    {20, 10, true, "20x10 unit-slot"},
      {8, 5, false, "8x5 2-resource"},  {16, 8, false, "16x8 2-resource"},
      {30, 12, false, "30x12 2-resource"},
  };
  for (const Shape& shape : shapes) {
    double dual_bound = 0.0;
    double exact_cost = 0.0;
    double exact_ms = 0.0;
    double flow_cost = 0.0;
    double flow_ms = 0.0;
    double greedy_cost = 0.0;
    double greedy_ms = 0.0;
    int counted = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      AssignmentProblem p =
          random_instance(shape.apps, shape.servers, seed * 7919, shape.unit_slot);
      const auto [ec, et] = timed([&] { return solve_exact(p); });
      if (ec < 0.0) continue;  // skip infeasible draws
      const auto [gc, gt] = timed([&] {
        AssignmentSolution s = solve_greedy(p);
        improve_local_search(p, s);
        return s;
      });
      double fc = 0.0;
      double ft = 0.0;
      if (shape.unit_slot) {
        const auto [c, t] = timed([&] { return solve_flow(p); });
        fc = c;
        ft = t;
      }
      LagrangianOptions lag;
      lag.upper_bound = gc;
      dual_bound += lagrangian_lower_bound(p, lag).lower_bound;
      exact_cost += ec;
      exact_ms += et;
      flow_cost += fc;
      flow_ms += ft;
      greedy_cost += gc;
      greedy_ms += gt;
      ++counted;
    }
    if (counted == 0) continue;
    const double inv = 1.0 / counted;
    const double gap = exact_cost > 0.0 ? (greedy_cost - exact_cost) / exact_cost : 0.0;
    table.add_row({shape.label, util::format_fixed(dual_bound * inv, 2),
                   util::format_fixed(exact_cost * inv, 2),
                   util::format_fixed(exact_ms * inv, 2),
                   shape.unit_slot ? util::format_fixed(flow_cost * inv, 2) : "-",
                   shape.unit_slot ? util::format_fixed(flow_ms * inv, 3) : "-",
                   util::format_fixed(greedy_cost * inv, 2),
                   util::format_fixed(greedy_ms * inv, 3), util::format_percent(gap, 1)});
  }
  table.print(std::cout);
  bench::print_takeaway(
      "Flow matches the exact optimum on unit-slot instances at a fraction of the cost; "
      "greedy+LS stays within a few percent of optimal - justifying solve_auto's routing.");
  return 0;
}
