// Figure 3: yearly mean carbon intensity per zone for the West US and
// Central EU mesoscale regions. Paper: max/min spread ~2.7x (West US) and
// ~10.8x (Central EU), persisting across the whole year.
#include "bench_util.hpp"

#include <algorithm>

#include "carbon/synthesizer.hpp"
#include "carbon/trace.hpp"
#include "carbon/zone.hpp"
#include "geo/region.hpp"
#include "geo/site.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace carbonedge;

namespace {

void report(const geo::Region& region, const char* figure_id) {
  const auto& catalog = carbon::ZoneCatalog::builtin();
  const carbon::TraceSynthesizer synthesizer;
  struct Row {
    std::string zone;
    double mean;
    double min;
    double max;
  };
  std::vector<Row> rows;
  for (const geo::City& city : region.resolve()) {
    const carbon::CarbonTrace trace = synthesizer.synthesize(catalog.spec_for(city));
    rows.push_back({city.name, trace.yearly_mean(), trace.yearly_min(), trace.yearly_max()});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) { return a.mean > b.mean; });

  util::Table table({"Zone", "Year mean", "Year min", "Year max", ""});
  table.set_title(std::string(figure_id) + ": " + region.name +
                  " yearly carbon intensity (g CO2eq/kWh)");
  for (const Row& row : rows) {
    table.add_row({row.zone, util::format_fixed(row.mean, 1), util::format_fixed(row.min, 1),
                   util::format_fixed(row.max, 1), util::format_bar(row.mean, rows.front().mean)});
  }
  table.print(std::cout);
  bench::print_takeaway(region.name + " yearly max/min spread: " +
                        util::format_fixed(rows.front().mean / rows.back().mean, 1) +
                        "x (paper: 2.7x West US, 10.8x Central EU)");
}

}  // namespace

int main() {
  bench::print_header("Figure 3", "Yearly carbon intensity of two mesoscale regions");
  report(geo::west_us_region(), "Figure 3a");
  report(geo::central_eu_region(), "Figure 3b");
  return 0;
}
