// Serving-mode throughput: replay the year-long CDN workload (Section 6.3
// setting) through serve::EventLoop at maximum speed — the event-driven
// ingest, windowing, and EMA machinery processing a year of arrivals as
// fast as the engine steps. Reports events/sec and epochs/sec; the final
// counters must match the batch engine's (the replay oracle), so this
// bench doubles as a full-scale smoke of the serving path.
//
// CARBONEDGE_SMOKE_EPOCHS caps the horizon for CI; CI uploads this bench's
// stdout as the serve-replay throughput artifact.
#include "bench_util.hpp"
#include "carbon/service.hpp"
#include "core/policy.hpp"
#include "core/simulation.hpp"
#include "geo/coord.hpp"
#include "geo/region.hpp"

#include <chrono>

#include "serve/event_loop.hpp"
#include "serve/event_source.hpp"
#include "sim/datacenter.hpp"
#include "sim/device.hpp"
#include "util/table.hpp"

using namespace carbonedge;

int main(int argc, char** argv) {
  bench::print_header("Serve replay", "Year-long streaming replay throughput");
  bench::init_store(argc, argv);
  const std::string metrics_path = bench::init_metrics(argc, argv);
  bench::BenchJsonWriter json = bench::init_bench_json(argc, argv);

  core::SimulationConfig config = bench::apply_smoke_epochs(bench::cdn_config());
  config.policy = core::PolicyConfig::carbon_edge();
  const geo::Region region = geo::cdn_region(geo::Continent::kNorthAmerica, 40);
  const carbon::CarbonIntensityService service = bench::make_service(region);
  core::EdgeSimulation simulation(
      sim::make_uniform_cluster(region, 1, sim::DeviceType::kA2), service);

  serve::ServeConfig serve_config;
  serve_config.sim = config;
  serve_config.window_epochs = 8;  // one window per simulated day
  serve::TraceReplaySource source(config.workload, simulation.pristine_cluster(),
                                  config.epochs, config.epoch_hours);
  serve::EventLoop loop(simulation, serve_config);

  // lint: nondeterminism-ok(throughput bench: wall clock measures events/sec; replayed counters stay deterministic)
  const auto start = std::chrono::steady_clock::now();
  const serve::ServeResult result = loop.run(source);
  const double seconds =
      // lint: nondeterminism-ok(throughput bench: wall clock measures events/sec; replayed counters stay deterministic)
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  const double events = static_cast<double>(result.ingest.accepted);
  std::cout << "epochs " << config.epochs << ", windows " << result.windows.size()
            << ", events " << result.ingest.accepted << " (dropped "
            << result.ingest.dropped() << ")\n"
            << "placed " << result.sim.apps_placed << ", rejected "
            << result.sim.apps_rejected << ", migrations " << result.sim.migrations
            << ", failures " << result.sim.server_failures << "\n"
            << "carbon " << util::format_fixed(result.sim.telemetry.total_carbon_kg(), 1)
            << " kg, mean RTT "
            << util::format_fixed(result.sim.telemetry.mean_rtt_ms(), 2) << " ms\n"
            << "wall " << util::format_fixed(seconds, 3) << " s\n";
  // Stable grep targets for the CI throughput artifact.
  std::cout << "serve_replay_events_per_sec "
            << util::format_fixed(seconds > 0.0 ? events / seconds : 0.0, 1) << "\n"
            << "serve_replay_epochs_per_sec "
            << util::format_fixed(
                   seconds > 0.0 ? static_cast<double>(config.epochs) / seconds : 0.0, 1)
            << "\n";
  json.add_row("serve_replay", 1,
               {{"epochs", static_cast<double>(config.epochs)},
                {"events", events},
                {"events_per_sec", seconds > 0.0 ? events / seconds : 0.0},
                {"epochs_per_sec",
                 seconds > 0.0 ? static_cast<double>(config.epochs) / seconds : 0.0},
                {"wall_s", seconds},
                {"carbon_g", result.sim.telemetry.total_carbon_g()},
                {"migrations", static_cast<double>(result.sim.migrations)}});
  json.write();
  bench::write_metrics_json(metrics_path);
  bench::print_takeaway("the streaming path replays a year of arrivals at full engine speed");
  return 0;
}
